package rpc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graf/internal/ckpt"
	"graf/internal/fleet"
	"graf/internal/obs"
	"graf/internal/overload"
)

// ShardServer exposes one dynamic fleet over the control-plane protocol.
// One mutex serializes all fleet-touching handlers — the fleet's dynamic
// API is single-owner by design, and the round cadence (one tick request
// per TickS of simulated time) leaves the lock uncontended. /healthz never
// takes the lock, so a slow round cannot read as a dead shard.
type ShardServer struct {
	// Bundle is the shard-local model artifact (same .graf file in every
	// process).
	Bundle ModelBundle
	// CkptDir is the shard's checkpoint store directory ("" = none). All
	// shards of one deployment share it: namespaced per-tenant files mean
	// no collisions, and a migration target finds the source's snapshot.
	CkptDir string
	// AuditDir mirrors per-tenant audit logs to disk ("" = in-memory).
	// Shared across shards for the same reason.
	AuditDir string
	// MaxReplayTicks bounds how far past the router's tick count an admit
	// will replay to cover a dead owner's flushed-but-unreported decisions
	// (default 4; a shard can only have been one round ahead, but partial
	// flushes make the exact boundary fuzzy).
	MaxReplayTicks int
	// Tel, when set before Serve, exposes /metrics, /debug/vars and
	// /debug/pprof/* on the shard's own control-plane mux (the router
	// scrapes /metrics for federation), records per-operation durations,
	// and is handed to the fleet so graf_fleet_* series appear here too.
	Tel *obs.Telemetry
	// Logf, when set, receives one line per control-plane operation.
	Logf func(format string, args ...any)
	// MaxInflight bounds concurrently executing control-plane requests (the
	// admission gate; <=0 = overload.NewGate's default). Critical endpoints
	// (healthz, configure, admit, evict, checkpoint) are never shed; ticks
	// shed at full capacity; status reads first, at half.
	MaxInflight int
	// RetryAfterMS is the backpressure hint attached to shed verdicts
	// (<=0 = gate default).
	RetryAfterMS int
	// Governor, when set, drives the fleet's adaptive brownout target from
	// observed round wall times: rounds over budget walk every tenant one
	// rung down the degradation ladder, calm rounds walk them back up.
	Governor *overload.GovernorConfig

	mu      sync.Mutex
	fl      *fleet.Fleet
	spec    Spec
	round   int
	started time.Time
	gov     *overload.Governor // lazily built from Governor; guarded by mu

	gateOnce sync.Once
	gate     *overload.Gate

	// Overload accounting. expiredShed counts requests refused because their
	// propagated deadline had already passed; expiredExecuted is the
	// invariant tripwire — work that began executing past its deadline — and
	// must stay zero.
	expiredShed     atomic.Int64
	expiredExecuted atomic.Int64

	// Epoch fence (DESIGN.md §3k). epoch is the highest Graf-Epoch seen on
	// any mutating request; it only ever rises, and it rises under s.mu so a
	// stale-epoch request already queued on the mutex is re-checked against
	// the new fence before it can execute. fencedRejected counts stale
	// mutations refused; fencedAccepted is the invariant tripwire — a stale
	// mutation that executed anyway — and must stay zero (the failover drill
	// and CI assert it, mirroring expiredExecuted).
	epoch          atomic.Uint64
	fencedRejected atomic.Int64
	fencedAccepted atomic.Int64

	// trc is the control-plane tracer, created at configure time when the
	// spec enables tracing (atomic: /v1/traces reads it without s.mu).
	trc atomic.Pointer[obs.Tracer]

	// healthRound/healthTenants are atomic mirrors of round and tenant
	// count, refreshed by the mutating handlers via publishHealth, so
	// /healthz can answer without touching s.mu even while a long tick or
	// admit holds it past the probe timeout.
	healthRound   atomic.Int64
	healthTenants atomic.Int64

	srv *http.Server
	ln  net.Listener
}

// publishHealth refreshes the lock-free mirrors /healthz serves from.
// Callers must hold s.mu.
func (s *ShardServer) publishHealth() {
	n := 0
	if s.fl != nil {
		n = len(s.fl.Tenants())
	}
	s.healthRound.Store(int64(s.round))
	s.healthTenants.Store(int64(n))
}

func (s *ShardServer) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Handler returns the server's HTTP mux. Every route passes through the
// overload shield with its shedding priority: recovery-critical endpoints
// are never shed, ticks shed at full capacity, status reads first.
func (s *ShardServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.shielded("health", overload.PriCritical, s.handleHealth))
	mux.HandleFunc("POST /v1/configure", s.shielded("configure", overload.PriCritical, s.fenceFast("configure", s.handleConfigure)))
	mux.HandleFunc("POST /v1/admit", s.shielded("admit", overload.PriCritical, s.fenceFast("admit", s.handleAdmit)))
	mux.HandleFunc("POST /v1/evict", s.shielded("evict", overload.PriCritical, s.fenceFast("evict", s.handleEvict)))
	mux.HandleFunc("POST /v1/tick", s.shielded("tick", overload.PriHigh, s.fenceFast("tick", s.handleTick)))
	mux.HandleFunc("GET /v1/quotas", s.shielded("quotas", overload.PriLow, s.handleQuotas))
	mux.HandleFunc("GET /v1/tenants", s.shielded("tenants", overload.PriLow, s.handleTenants))
	mux.HandleFunc("GET /v1/decisions", s.shielded("decisions", overload.PriLow, s.handleDecisions))
	mux.HandleFunc("GET /v1/traces", s.shielded("traces", overload.PriLow, s.handleTraces))
	mux.HandleFunc("POST /v1/checkpoint", s.shielded("checkpoint", overload.PriCritical, s.fenceFast("checkpoint", s.handleCheckpoint)))
	if s.Tel != nil {
		th := s.Tel.Handler()
		mux.Handle("GET /metrics", th)
		mux.Handle("/debug/", th)
	}
	return mux
}

// admission returns the shard's admission gate, built on first use.
func (s *ShardServer) admission() *overload.Gate {
	s.gateOnce.Do(func() {
		s.gate = overload.NewGate(s.MaxInflight, s.RetryAfterMS)
	})
	return s.gate
}

// shielded wraps a handler in the overload shield: (1) deadline shedding —
// a request whose propagated Graf-Deadline-Ms budget is already spent is
// refused with a typed 504 before any work happens, and an unexpired budget
// is re-anchored onto the request context so the handler can re-check after
// queueing; (2) admission control — the bounded-inflight gate sheds by
// priority with a typed 429 carrying a Retry-After hint. Both verdicts are
// backpressure, not failure: the client and router must not feed them into
// breakers or recovery.
func (s *ShardServer) shielded(op string, pri overload.Priority, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if rem, ok := overload.ParseRemaining(r.Header.Get(overload.HeaderDeadlineMS)); ok {
			if rem <= 0 {
				s.expiredShed.Add(1)
				s.countShed(op, "expired")
				writeJSON(w, http.StatusGatewayTimeout, errorResponse{
					Error:   fmt.Sprintf("%s: deadline expired before work started", op),
					Expired: true,
				})
				return
			}
			r = r.WithContext(overload.WithDeadline(r.Context(), time.Now().Add(rem)))
		}
		release, err := s.admission().Enter(pri)
		if err != nil {
			var ov *overload.ErrOverloaded
			errors.As(err, &ov)
			s.countShed(op, "overloaded")
			writeJSON(w, http.StatusTooManyRequests, errorResponse{
				Error:        fmt.Sprintf("%s shed: %v", op, err),
				Overloaded:   true,
				RetryAfterMS: ov.RetryAfterMS,
			})
			return
		}
		defer release()
		h(w, r)
	}
}

// countShed records one shed verdict as a metric.
func (s *ShardServer) countShed(op, reason string) {
	if s.Tel == nil {
		return
	}
	s.Tel.Reg.Counter("graf_shard_shed_total",
		"Control-plane requests shed by admission control or deadline expiry.",
		obs.Labels{"op": op, "reason": reason}).Inc()
}

// guardExpired is the executed-past-deadline tripwire, called with the clock
// reading taken at the moment execution begins. The deadline shed in
// shielded/handleTick runs first on every path with the same reading, so
// this counter stays zero; the chaos invariant checker and the CI smoke
// drill assert exactly that — "no expired work executed" is a checked
// property, not an assumed one.
func (s *ShardServer) guardExpired(r *http.Request, startedAt time.Time) {
	if dl, ok := overload.DeadlineFrom(r.Context()); ok && !startedAt.Before(dl) {
		s.expiredExecuted.Add(1)
	}
}

// requestEpoch extracts the router generation's fencing token from the
// Graf-Epoch header. Absent or malformed means the caller is epoch-unaware
// (0, false): such requests pass the fence unchecked, preserving the
// pre-fencing protocol for tests and single-router deployments.
func requestEpoch(r *http.Request) (uint64, bool) {
	v := r.Header.Get(epochHeader)
	if v == "" {
		return 0, false
	}
	e, err := strconv.ParseUint(v, 10, 64)
	if err != nil || e == 0 {
		return 0, false
	}
	return e, true
}

// fenceFast is the pre-lock fast path wrapped around every mutating route: a
// request already behind the fence is rejected without queueing on s.mu, so
// a zombie router cannot even add lock contention. Not sufficient alone —
// the authoritative check is fenceLocked, under the mutex, which closes the
// race where the fence rises while a stale request sits queued.
func (s *ShardServer) fenceFast(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if e, ok := requestEpoch(r); ok && e < s.epoch.Load() {
			s.rejectFenced(w, op, e)
			return
		}
		h(w, r)
	}
}

// fenceLocked is the authoritative epoch check; every mutating handler calls
// it immediately after acquiring s.mu and returns without touching the fleet
// when it reports false. A higher epoch raises the fence (durably, best
// effort) in the same critical section the mutation runs in, which is what
// makes stale-write acceptance structurally impossible: once a new router
// generation's first mutation commits, every older generation's queued
// request re-checks against the raised fence before executing.
func (s *ShardServer) fenceLocked(w http.ResponseWriter, r *http.Request, op string) bool {
	e, ok := requestEpoch(r)
	if !ok {
		return true
	}
	if !s.raiseEpochLocked(e) {
		s.rejectFenced(w, op, e)
		return false
	}
	// Tripwire, mirroring guardExpired: re-derive the verdict at the moment
	// the mutation begins. With the raise and the mutation in one critical
	// section this never fires; the failover drill asserts exactly that.
	if e < s.epoch.Load() {
		s.fencedAccepted.Add(1)
	}
	return true
}

// raiseEpochLocked raises the fence to e (persisting it when a checkpoint
// dir exists) and reports whether e is current. Callers must hold s.mu — the
// fence must not rise concurrently with a mutation that already passed it.
func (s *ShardServer) raiseEpochLocked(e uint64) bool {
	cur := s.epoch.Load()
	if e < cur {
		return false
	}
	if e > cur {
		s.epoch.Store(e)
		s.logf("epoch fence raised %d -> %d", cur, e)
		if s.CkptDir != "" {
			// Best effort: the file is a shared fleet-wide floor a respawned
			// shard loads at startup, so even a fresh process rejects a
			// zombie router's writes. Atomic rename means never torn; a lost
			// write costs nothing because every live shard still holds the
			// fence in memory and the new router re-stamps every RPC.
			_ = os.MkdirAll(s.CkptDir, 0o755)
			_ = ckpt.WriteFileAtomic(filepath.Join(s.CkptDir, "epoch.fence"),
				[]byte(strconv.FormatUint(e, 10)), 0o644)
		}
	}
	return true
}

// loadEpochFence seeds the fence from the shared durable floor, if present.
func (s *ShardServer) loadEpochFence() {
	if s.CkptDir == "" {
		return
	}
	b, err := os.ReadFile(filepath.Join(s.CkptDir, "epoch.fence"))
	if err != nil {
		return
	}
	if e, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64); err == nil && e > s.epoch.Load() {
		s.epoch.Store(e)
	}
}

// rejectFenced writes the typed 409 stale-epoch rejection.
func (s *ShardServer) rejectFenced(w http.ResponseWriter, op string, e uint64) {
	cur := s.epoch.Load()
	s.fencedRejected.Add(1)
	s.countFenced(op)
	s.logf("%s: fenced stale epoch %d (fence at %d)", op, e, cur)
	writeJSON(w, http.StatusConflict, errorResponse{
		Error:  fmt.Sprintf("%s: stale epoch %d, shard fence at %d (router lost leadership)", op, e, cur),
		Fenced: true,
		Epoch:  cur,
	})
}

// countFenced records one fenced rejection as a metric.
func (s *ShardServer) countFenced(op string) {
	if s.Tel == nil {
		return
	}
	s.Tel.Reg.Counter("graf_shard_fenced_total",
		"Stale-epoch mutations rejected by the shard's fence.",
		obs.Labels{"op": op}).Inc()
}

// traceOp continues the caller's trace server-side: it parses the
// traceparent header and opens a "shard/<op>" child span. Nil (a no-op)
// when tracing is not configured.
func (s *ShardServer) traceOp(r *http.Request, op string) *obs.ActiveSpan {
	tr := s.trc.Load()
	if tr == nil {
		return nil
	}
	parent, _ := obs.ParseTraceparent(r.Header.Get(traceparentHeader))
	return tr.StartChild(parent, "shard/"+op)
}

// observeOp records one handler's wall-clock cost.
func (s *ShardServer) observeOp(op string, start time.Time) {
	if s.Tel == nil {
		return
	}
	s.Tel.Reg.Histogram("graf_shard_op_seconds",
		"Wall-clock cost of shard control-plane operations.",
		nil, obs.Labels{"op": op}).Observe(time.Since(start).Seconds())
}

// Serve binds addr (host:port; port 0 picks a free one) and serves until
// Shutdown. It returns the bound address immediately; the accept loop runs
// in a background goroutine.
func (s *ShardServer) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.loadEpochFence()
	s.started = time.Now()
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Shutdown drains the shard: flush audit, checkpoint every tenant (when a
// checkpoint dir is configured), stop the fleet and close the listener — a
// routine restart is then indistinguishable from a warm restore.
func (s *ShardServer) Shutdown() error {
	s.mu.Lock()
	var err error
	if s.fl != nil {
		s.fl.FlushAudit()
		if s.CkptDir != "" {
			_, err = s.fl.Checkpoint(s.CkptDir)
		}
		s.fl.Stop()
		s.fl = nil
	}
	s.publishHealth()
	s.mu.Unlock()
	if s.srv != nil {
		s.srv.Close()
	}
	return err
}

// Addr returns the bound listen address ("" before Serve).
func (s *ShardServer) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Kill closes the server abruptly — no flush, no checkpoint, no fleet stop:
// the in-process stand-in for SIGKILL. Whatever was durably mirrored before
// the last acknowledged tick is all a recovering router gets to work with,
// which is exactly the contract recovery is verified against.
func (s *ShardServer) Kill() {
	if s.srv != nil {
		s.srv.Close()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "decode request: %v", err)
		return false
	}
	return true
}

func (s *ShardServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Deliberately lock-free: round/tenant count are read from atomic
	// mirrors (possibly slightly stale), never from under s.mu — a tick or
	// admit holding the mutex past the probe timeout must not make a live
	// shard read as dead. s.started is written once before Serve starts the
	// accept loop, so reading it here is race-free.
	gs := s.admission().Stats()
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:              true,
		PID:             os.Getpid(),
		Round:           int(s.healthRound.Load()),
		Uptime:          time.Since(s.started).Truncate(time.Millisecond).String(),
		Tenants:         int(s.healthTenants.Load()),
		Inflight:        gs.Inflight,
		Shed:            gs.TotalShed(),
		ExpiredShed:     s.expiredShed.Load(),
		ExpiredExecuted: s.expiredExecuted.Load(),
		Epoch:           s.epoch.Load(),
		FencedRejected:  s.fencedRejected.Load(),
		FencedAccepted:  s.fencedAccepted.Load(),
	})
}

func (s *ShardServer) handleConfigure(w http.ResponseWriter, r *http.Request) {
	var req ConfigureRequest
	if !readJSON(w, r, &req) {
		return
	}
	defer s.observeOp("configure", time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publishHealth()
	if !s.fenceLocked(w, r, "configure") {
		return
	}
	if s.fl != nil && len(s.fl.Tenants()) > 0 {
		writeErr(w, http.StatusConflict, "shard already holds %d tenants; evict before reconfiguring", len(s.fl.Tenants()))
		return
	}
	cfg, err := req.Spec.FleetConfig(s.Bundle, s.AuditDir)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Spec.Trace {
		// The tracer seed derives from the fleet seed plus this shard's
		// address, so every process mints a disjoint deterministic ID stream.
		proc := "shard:" + s.Addr()
		s.trc.Store(obs.NewTracer(obs.TracerOptions{
			Seed: obs.DeriveTraceSeed(req.Spec.Seed, proc),
			Proc: proc,
		}))
	} else {
		s.trc.Store(nil)
	}
	cfg.Obs = s.Tel
	cfg.Tracer = s.trc.Load()
	if s.fl != nil {
		s.fl.Stop()
	}
	fl, err := fleet.New(cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	fl.Start()
	s.fl = fl
	s.spec = req.Spec
	s.round = 0
	s.logf("configured: app=%s seed=%d tick=%gs trace=%v", req.Spec.App, req.Spec.Seed, cfg.TickS, req.Spec.Trace)
	writeJSON(w, http.StatusOK, ConfigureResponse{OK: true})
}

func status(t *fleet.Tenant) TenantStatus {
	n, sum := t.AuditDigest()
	return TenantStatus{
		ID:       t.ID,
		Ticks:    t.Ticks(),
		P99:      t.LastP99(),
		ViolS:    t.ViolationSeconds(),
		Degraded: t.Degraded(),
		AuditLen: n,
		AuditFNV: sum,
		Brownout: int(t.Brownout()),
	}
}

// handleAdmit places a tenant, restoring losslessly when it lived before:
//
//  1. Repair + read any on-disk audit log the tenant's previous owner left
//     (exclusive ownership is guaranteed here — the old owner is dead or
//     has evicted).
//  2. Rebuild the tenant from the spec (this truncates the audit file) and
//     fast-forward it to the router's known tick count by deterministic
//     re-execution.
//  3. If the prior log proves the old owner got further (it flushed audit
//     bytes for ticks it never reported), replay additional ticks until
//     the regenerated stream covers the prior one.
//  4. Verify the prior bytes are a byte-exact prefix of the regenerated
//     stream — zero lost decisions, checked, not assumed — and, when a
//     checkpoint at the same tick exists, verify the rebuilt controller
//     state digest against it.
func (s *ShardServer) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var req AdmitRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Ticks < 0 {
		writeErr(w, http.StatusBadRequest, "negative tick count")
		return
	}
	span := s.traceOp(r, "admit").SetAttr("ticks", float64(req.Ticks))
	defer span.End()
	defer s.observeOp("admit", time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publishHealth()
	if !s.fenceLocked(w, r, "admit") {
		return
	}
	if s.fl == nil {
		writeErr(w, http.StatusConflict, "shard not configured")
		return
	}
	// Replay/fast-forward ticks executed during this admit nest under it.
	s.fl.SetTraceParent(span.Context())

	if t := s.fl.Tenant(req.ID); t != nil {
		// Idempotent retry: an earlier admit succeeded here but its response
		// was lost or timed out in flight, and the client retried. Returning
		// 409 would turn that lost response into a permanent bootstrap,
		// recovery, or migration failure even though the tenant is placed
		// correctly — instead fast-forward to the requested tick count if the
		// tenant is behind and report its current status.
		if t.Ticks() < req.Ticks {
			if err := s.fl.Resume(req.ID, req.Ticks); err != nil {
				writeErr(w, http.StatusInternalServerError, "resume: %v", err)
				return
			}
			s.fl.FlushAudit()
		}
		s.logf("admit %s ticks=%d: already resident at tick %d (idempotent retry)", req.ID, req.Ticks, t.Ticks())
		writeJSON(w, http.StatusOK, AdmitResponse{Status: status(t)})
		return
	}

	var prior []byte
	if s.AuditDir != "" {
		path := filepath.Join(s.AuditDir, fleet.SanitizeID(req.ID)+".jsonl")
		if _, err := os.Stat(path); err == nil {
			if _, _, err := obs.RepairLog(path); err != nil {
				writeErr(w, http.StatusInternalServerError, "repair prior audit log: %v", err)
				return
			}
			b, err := os.ReadFile(path)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, "read prior audit log: %v", err)
				return
			}
			prior = b
		}
	}

	t, err := s.fl.Admit(s.specTenant(req.ID))
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	fail := func(status int, format string, args ...any) {
		s.fl.Evict(req.ID)
		writeErr(w, status, format, args...)
	}
	// If the previous owner browned the tenant out (adaptively — scripted
	// schedules are already in the spec), its transitions are in the prior
	// audit bytes. Install them as a replay schedule BEFORE re-execution so
	// the regenerated stream walks the same ladder at the same ticks and the
	// byte-prefix verification below still holds.
	var replaySched map[int]overload.Step
	if len(prior) > 0 {
		if replaySched, err = fleet.ExtractBrownoutSchedule(prior); err != nil {
			fail(http.StatusInternalServerError, "extract brownout schedule: %v", err)
			return
		}
		if replaySched != nil {
			if err := s.fl.SetReplayBrownout(req.ID, replaySched); err != nil {
				fail(http.StatusInternalServerError, "install brownout schedule: %v", err)
				return
			}
		}
	}
	if err := s.fl.Resume(req.ID, req.Ticks); err != nil {
		fail(http.StatusInternalServerError, "resume: %v", err)
		return
	}

	resp := AdmitResponse{PriorBytes: len(prior)}
	if len(prior) > 0 {
		maxReplay := s.MaxReplayTicks
		if maxReplay <= 0 {
			maxReplay = 4
		}
		regen := t.AuditLog()
		for replay := 0; len(regen) < len(prior); replay++ {
			if replay >= maxReplay {
				fail(http.StatusInternalServerError,
					"tenant %s: prior audit log (%d bytes) not covered after replaying %d extra ticks (%d bytes) — lost decisions",
					req.ID, len(prior), replay, len(regen))
				return
			}
			if err := s.fl.Resume(req.ID, t.Ticks()+1); err != nil {
				fail(http.StatusInternalServerError, "replay: %v", err)
				return
			}
			resp.ReplayedTicks++
			regen = t.AuditLog()
		}
		if !bytes.HasPrefix(regen, prior) {
			fail(http.StatusInternalServerError,
				"tenant %s: regenerated audit stream diverges from prior log — lost decisions", req.ID)
			return
		}
		resp.PriorVerified = true
	}

	if s.CkptDir != "" {
		store, err := ckpt.NewNamespacedStore(s.CkptDir, "tenant-"+fleet.SanitizeID(req.ID))
		if err == nil {
			snap, err := store.LoadLatest()
			if err == nil && snap.Ticks == t.Ticks() {
				if err := t.VerifyAgainstSnapshot(snap); err != nil {
					fail(http.StatusInternalServerError, "snapshot verification: %v", err)
					return
				}
				resp.SnapshotVerified = true
			} else if err != nil && !errors.Is(err, ckpt.ErrNoSnapshot) {
				fail(http.StatusInternalServerError, "load snapshot: %v", err)
				return
			}
		}
	}

	// Replay is done and verified; future ticks follow the live drivers
	// (scripted schedule or adaptive target) from the rung replay landed on.
	if replaySched != nil {
		if err := s.fl.ClearReplayBrownout(req.ID); err != nil {
			fail(http.StatusInternalServerError, "clear brownout schedule: %v", err)
			return
		}
	}

	s.fl.FlushAudit()
	resp.Status = status(t)
	s.logf("admit %s ticks=%d prior=%dB replayed=%d verified=%v/%v",
		req.ID, req.Ticks, resp.PriorBytes, resp.ReplayedTicks, resp.PriorVerified, resp.SnapshotVerified)
	writeJSON(w, http.StatusOK, resp)
}

// specTenant rebuilds the tenant config from the shard's installed spec.
func (s *ShardServer) specTenant(id string) fleet.TenantConfig {
	return s.spec.TenantConfig(id)
}

func (s *ShardServer) handleEvict(w http.ResponseWriter, r *http.Request) {
	var req EvictRequest
	if !readJSON(w, r, &req) {
		return
	}
	span := s.traceOp(r, "evict")
	defer span.End()
	defer s.observeOp("evict", time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publishHealth()
	if !s.fenceLocked(w, r, "evict") {
		return
	}
	if s.fl == nil {
		writeErr(w, http.StatusConflict, "shard not configured")
		return
	}
	t := s.fl.Tenant(req.ID)
	if t == nil {
		// Idempotent retry: the tenant is already gone — an earlier evict
		// succeeded but its response was lost, and the client retried. A 404
		// here would fail a migration whose drain actually completed; report
		// success instead, flagged Missing so the caller knows the Status
		// carries no accounting.
		s.logf("evict %s: not resident (idempotent retry)", req.ID)
		writeJSON(w, http.StatusOK, EvictResponse{Missing: true, Status: TenantStatus{ID: req.ID}})
		return
	}
	if req.Checkpoint && s.CkptDir != "" {
		if err := s.fl.CheckpointTenant(s.CkptDir, req.ID); err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	st := status(t)
	if _, err := s.fl.Evict(req.ID); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.logf("evict %s ticks=%d ckpt=%v", req.ID, st.Ticks, req.Checkpoint)
	writeJSON(w, http.StatusOK, EvictResponse{Status: st})
}

func (s *ShardServer) handleTick(w http.ResponseWriter, r *http.Request) {
	var req TickRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Round <= 0 {
		writeErr(w, http.StatusBadRequest, "round must be positive")
		return
	}
	span := s.traceOp(r, "tick").SetAttr("round", float64(req.Round))
	defer span.End()
	defer s.observeOp("tick", time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publishHealth()
	if !s.fenceLocked(w, r, "tick") {
		return
	}
	if s.fl == nil {
		writeErr(w, http.StatusConflict, "shard not configured")
		return
	}
	// A tick that queued behind the mutex past its propagated deadline is
	// shed here, after the lock: nobody is waiting for its result anymore,
	// and RoundTo is idempotent catch-up — the next round's tick covers the
	// skipped work. One clock reading serves both the shed and the tripwire.
	now := time.Now()
	if dl, ok := overload.DeadlineFrom(r.Context()); ok && !now.Before(dl) {
		s.expiredShed.Add(1)
		s.countShed("tick", "expired")
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{
			Error:   fmt.Sprintf("tick round %d: deadline expired while queued", req.Round),
			Expired: true,
		})
		return
	}
	s.guardExpired(r, now)
	// Tenant tick spans executed by the worker pool nest under this span.
	s.fl.SetTraceParent(span.Context())
	s.fl.RoundTo(req.Round)
	s.round = req.Round
	if s.Governor != nil {
		if s.gov == nil {
			s.gov = overload.NewGovernor(*s.Governor)
		}
		wallMS := float64(time.Since(now)) / float64(time.Millisecond)
		if step, changed := s.gov.Observe(wallMS); changed {
			s.logf("governor: round %d took %.0fms, brownout target -> %v", req.Round, wallMS, step)
		}
		s.fl.SetBrownoutTarget(s.gov.Step())
	}
	// Durable-before-acknowledged: flush every tenant's on-disk audit log
	// before answering, so the file is never behind what the router knows.
	s.fl.FlushAudit()
	resp := TickResponse{Round: req.Round}
	for _, t := range s.fl.Tenants() {
		resp.Statuses = append(resp.Statuses, status(t))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *ShardServer) handleQuotas(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fl == nil {
		writeErr(w, http.StatusConflict, "shard not configured")
		return
	}
	resp := QuotasResponse{Quotas: map[string]map[string]float64{}}
	for _, t := range s.fl.Tenants() {
		resp.Quotas[t.ID] = t.Quotas()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *ShardServer) handleTenants(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fl == nil {
		writeErr(w, http.StatusConflict, "shard not configured")
		return
	}
	resp := TenantsResponse{}
	for _, t := range s.fl.Tenants() {
		resp.Statuses = append(resp.Statuses, status(t))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *ShardServer) handleDecisions(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("tenant")
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fl == nil {
		writeErr(w, http.StatusConflict, "shard not configured")
		return
	}
	t := s.fl.Tenant(id)
	if t == nil {
		writeErr(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	writeJSON(w, http.StatusOK, DecisionsResponse{Tenant: id, Records: t.Records()})
}

func (s *ShardServer) handleTraces(w http.ResponseWriter, r *http.Request) {
	tr := s.trc.Load()
	writeJSON(w, http.StatusOK, TracesResponse{Proc: tr.Proc(), Spans: tr.Snapshot()})
}

func (s *ShardServer) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	span := s.traceOp(r, "checkpoint")
	defer span.End()
	defer s.observeOp("checkpoint", time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.fenceLocked(w, r, "checkpoint") {
		return
	}
	if s.fl == nil {
		writeErr(w, http.StatusConflict, "shard not configured")
		return
	}
	if s.CkptDir == "" {
		writeErr(w, http.StatusConflict, "shard has no checkpoint directory")
		return
	}
	saved, err := s.fl.Checkpoint(s.CkptDir)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{Saved: saved})
}
