package rpc

import (
	"testing"

	"graf/internal/overload"
)

// FuzzParseBrownout hammers the -brownout flag parser. The flag reaches
// every process in a fleet via the shared Spec, so the parser must never
// panic, must reject malformed schedules instead of silently mangling them
// (a half-parsed schedule would break single-process/distributed byte
// comparability), and must be deterministic: the same string parses to the
// same schedule in every process.
func FuzzParseBrownout(f *testing.F) {
	for _, seed := range []string{
		"",
		"   ",
		"0:full",
		"12-24:heuristic",
		"12-24:heuristic,30:warm",
		"0-5:hold,5-10:warm,10:full",
		"5",
		":",
		"5:",
		":warm",
		"3:nosuchstep",
		"-1:warm",
		"4-2:warm",  // TO below FROM
		"4-4:warm",  // TO equal to FROM
		"1-2:warm,", // trailing comma -> empty phase
		"a-b:warm",
		"1.5:warm",
		"1-2:warm:extra",
		"9999999999999999999999:warm",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := ParseBrownout(s)
		if err != nil {
			if sched != nil {
				t.Fatalf("ParseBrownout(%q) returned a partial schedule alongside error %v", s, err)
			}
			return
		}
		for i, ph := range sched {
			if ph.FromTick < 0 {
				t.Fatalf("ParseBrownout(%q) phase %d: negative FromTick %d", s, i, ph.FromTick)
			}
			if ph.ToTick != 0 && ph.ToTick <= ph.FromTick {
				t.Fatalf("ParseBrownout(%q) phase %d: ToTick %d not above FromTick %d", s, i, ph.ToTick, ph.FromTick)
			}
			if ph.Step != overload.ClampStep(ph.Step) {
				t.Fatalf("ParseBrownout(%q) phase %d: step %v off the ladder", s, i, ph.Step)
			}
		}
		// Determinism: a second parse of the same flag must yield the
		// identical schedule — this is what keeps the distributed run and
		// the single-process reference degrading in lockstep.
		again, err2 := ParseBrownout(s)
		if err2 != nil {
			t.Fatalf("ParseBrownout(%q) second parse errored: %v", s, err2)
		}
		if len(again) != len(sched) {
			t.Fatalf("ParseBrownout(%q) nondeterministic: %d phases then %d", s, len(sched), len(again))
		}
		for i := range sched {
			if again[i] != sched[i] {
				t.Fatalf("ParseBrownout(%q) nondeterministic at phase %d: %+v vs %+v", s, i, sched[i], again[i])
			}
		}
	})
}
