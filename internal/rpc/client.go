package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graf/internal/obs"
	"graf/internal/overload"
)

// traceparentHeader carries the caller's span context on every request, so
// the shard can continue the trace server-side (DESIGN.md §3i).
const traceparentHeader = "Traceparent"

// ClientConfig tunes the router-side call discipline: per-attempt timeout,
// bounded retries with exponential backoff and full jitter, and a per-shard
// circuit breaker so one dead shard costs at most Threshold timeouts before
// subsequent calls fail fast instead of stalling the router loop.
type ClientConfig struct {
	// Timeout bounds each attempt (default 2s).
	Timeout time.Duration
	// Retries is how many times a failed call is retried (default 3; the
	// call is attempted 1+Retries times).
	Retries int
	// BackoffBase/BackoffMax bound the exponential backoff between
	// attempts (defaults 50ms / 1s); the actual sleep is uniform in
	// (0, min(BackoffMax, BackoffBase·2^attempt)] — full jitter.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold consecutive failures open a shard's breaker
	// (default 3); while open, calls to that shard fail immediately.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting one
	// probe through (half-open; default 2s).
	BreakerCooldown time.Duration
	// Seed makes the jitter sequence reproducible (0 = 1).
	Seed int64
	// OpBudget bounds each logical call end-to-end — attempts, backoff
	// sleeps and Retry-After waits included. An attempt (or sleep) that
	// cannot fit in the remaining budget is refused with ErrBudgetExhausted
	// instead of started; the remaining budget is forwarded to the shard in
	// the Graf-Deadline-Ms header so it can shed work that would complete
	// past the deadline. 0 = unbounded (per-attempt Timeout still applies).
	OpBudget time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FaultInjector intercepts outbound control-plane requests — the seam
// chaos.NetInjector plugs into (structurally; rpc has no chaos dependency).
// op is the endpoint name ("tick", "admit", ...), shard the target address.
// Returning drop simulates the network losing the request; a positive delay
// is injected before the attempt.
type FaultInjector interface {
	Intercept(op, shard string, round, attempt int) (drop bool, delay time.Duration)
}

// ErrDropped is the injected-fault "network ate it" error.
var errDropped = fmt.Errorf("rpc: request dropped (injected fault)")

// ErrBreakerOpen is returned without touching the network while a shard's
// circuit breaker is open.
var ErrBreakerOpen = fmt.Errorf("rpc: circuit breaker open")

// ErrBudgetExhausted is returned when a call's end-to-end budget (OpBudget
// and/or a router-stamped round deadline) cannot fit another attempt or
// backoff sleep. It means "out of time", not "shard broken" — callers treat
// it like shed work, not failure.
var ErrBudgetExhausted = errors.New("rpc: op budget exhausted")

// ErrFencedEpoch is the typed match target for a shard's 409 stale-epoch
// rejection: the caller's Graf-Epoch is older than the highest the shard has
// seen, meaning a newer router generation has taken over. errors.Is(err,
// ErrFencedEpoch) matches through the RemoteError the wire rejection arrives
// as. Fencing is fatal to the sender — it has lost leadership and must stop
// mutating the fleet, not retry.
var ErrFencedEpoch = errors.New("rpc: fenced stale epoch")

// breaker is a per-shard circuit breaker: closed (normal) → open after
// Threshold consecutive failures (calls fail fast) → half-open after
// Cooldown (one probe allowed; success closes, failure re-opens).
type breaker struct {
	failures int
	openAt   time.Time
	open     bool
	probing  bool
}

// Client is the router's HTTP client: typed wrappers over the wire protocol
// with retry/backoff/jitter and per-shard breakers. Safe for concurrent use.
type Client struct {
	cfg   ClientConfig
	http  *http.Client
	Fault FaultInjector
	// Obs, when set, records request latency, attempt outcomes and breaker
	// transitions as graf_rpc_* metrics. Tracer, when set, wraps every call
	// in an "rpc/<op>" span with per-attempt child spans, and stamps the
	// traceparent header on the wire. Both are nil-safe no-ops; set them
	// before first use.
	Obs    *obs.RPCObs
	Tracer *obs.Tracer

	// epoch, when non-zero, rides every request as the Graf-Epoch header —
	// the router generation's fencing token (atomic: attempts read it
	// without c.mu).
	epoch atomic.Uint64

	mu       sync.Mutex
	breakers map[string]*breaker
	rng      *rand.Rand
	round    int
	deadline time.Time
}

// NewClient builds a client. fault may be nil.
func NewClient(cfg ClientConfig, fault FaultInjector) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg:      cfg,
		http:     &http.Client{Timeout: cfg.Timeout},
		Fault:    fault,
		breakers: map[string]*breaker{},
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

// SetEpoch installs the router generation's fencing epoch; every subsequent
// request carries it in the Graf-Epoch header. Zero (the default) sends no
// header — epoch-unaware callers keep working against fenced shards.
func (c *Client) SetEpoch(e uint64) {
	c.epoch.Store(e)
}

// Epoch returns the installed fencing epoch (0 = none).
func (c *Client) Epoch() uint64 {
	return c.epoch.Load()
}

// SetRound tells the client the current router round — the coordinate fault
// injection keys on, so chaos scenarios are expressed in rounds rather than
// wall time.
func (c *Client) SetRound(r int) {
	c.mu.Lock()
	c.round = r
	c.mu.Unlock()
}

// SetDeadline installs an absolute end-to-end deadline every subsequent call
// must fit within — the router stamps one per round so slow shards cannot
// stretch a round past its budget. The zero time clears it. OpBudget, when
// also set, still applies per call; the effective deadline is the earlier.
func (c *Client) SetDeadline(t time.Time) {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
}

// callDeadline resolves the effective deadline for one logical call: the
// earlier of the installed round deadline and now+OpBudget. Zero = unbounded.
func (c *Client) callDeadline() time.Time {
	c.mu.Lock()
	d := c.deadline
	c.mu.Unlock()
	if c.cfg.OpBudget > 0 {
		if od := time.Now().Add(c.cfg.OpBudget); d.IsZero() || od.Before(d) {
			d = od
		}
	}
	return d
}

// allow consults the shard's breaker before an attempt. transition is
// non-empty when the check itself moved the breaker ("half-open" on the
// first post-cooldown probe).
func (c *Client) allow(shard string) (allowed bool, transition string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[shard]
	if b == nil {
		b = &breaker{}
		c.breakers[shard] = b
	}
	if !b.open {
		return true, ""
	}
	if time.Since(b.openAt) >= c.cfg.BreakerCooldown && !b.probing {
		b.probing = true // half-open: exactly one probe
		c.Obs.BreakerTransition(shard, "half-open", obs.BreakerHalfOpen)
		return true, "half-open"
	}
	return false, ""
}

// record feeds an attempt outcome into the shard's breaker and reports any
// state transition it caused ("open", "closed", or "").
func (c *Client) record(shard string, ok bool) (transition string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[shard]
	if b == nil {
		b = &breaker{}
		c.breakers[shard] = b
	}
	if ok {
		wasOpen := b.open || b.probing
		*b = breaker{}
		if wasOpen {
			c.Obs.BreakerTransition(shard, "closed", obs.BreakerClosed)
			return "closed"
		}
		return ""
	}
	wasProbing := b.probing
	b.probing = false
	b.failures++
	if b.failures >= c.cfg.BreakerThreshold {
		wasOpen := b.open
		b.open = true
		b.openAt = time.Now()
		if !wasOpen || wasProbing { // closed→open, or a failed probe re-opening
			c.Obs.BreakerTransition(shard, "open", obs.BreakerOpen)
			return "open"
		}
	}
	return ""
}

// ResetBreaker force-closes a shard's breaker (after a respawn installs a
// fresh process behind the same address).
func (c *Client) ResetBreaker(shard string) {
	c.mu.Lock()
	b := c.breakers[shard]
	wasOpen := b != nil && (b.open || b.probing)
	delete(c.breakers, shard)
	c.mu.Unlock()
	if wasOpen {
		c.Obs.BreakerTransition(shard, "closed", obs.BreakerClosed)
	}
}

// backoff returns the full-jitter sleep before retry attempt n (1-based).
func (c *Client) backoff(attempt int) time.Duration {
	max := c.cfg.BackoffBase << uint(attempt-1)
	if max > c.cfg.BackoffMax {
		max = c.cfg.BackoffMax
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(max)) + 1)
	c.mu.Unlock()
	return d
}

// call performs one logical request with the full discipline. out may be
// nil; parent, when given, is the span the call's "rpc/<op>" span nests
// under (the trace then continues server-side via the traceparent header).
func (c *Client) call(shard, method, path, op string, in, out any, parent ...obs.SpanContext) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("rpc: encode %s: %w", op, err)
		}
	}
	span := c.Tracer.StartChild(optCtx(parent), "rpc/"+op).SetTrack(shard)
	start := time.Now()
	err := c.callLoop(shard, method, path, op, body, out, span)
	c.Obs.Request(op, shard, time.Since(start).Seconds(), err == nil)
	if err != nil {
		span.SetAttr("error", 1)
	}
	span.End()
	return err
}

// callLoop is call's retry loop, running inside the call span. The loop is
// budget-aware end to end: the effective deadline is resolved once, every
// sleep (backoff or Retry-After) that would overrun it is refused, and the
// remaining budget rides to the shard in the Graf-Deadline-Ms header.
func (c *Client) callLoop(shard, method, path, op string, body []byte, out any, span *obs.ActiveSpan) error {
	deadline := c.callDeadline()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt)
			if wait := retryAfter(lastErr); wait > 0 {
				d = wait // the shard told us when to come back
			}
			if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
				c.Obs.Attempt(op, "budget")
				span.Event("budget-exhausted", fmt.Sprintf("attempt %d", attempt))
				return fmt.Errorf("%w: %s %s: %v", ErrBudgetExhausted, op, shard, lastErr)
			}
			time.Sleep(d)
		}
		allowed, trans := c.allow(shard)
		if trans != "" {
			span.Event("breaker", trans)
		}
		if !allowed {
			c.Obs.Attempt(op, "rejected")
			span.Event("breaker-rejected", shard)
			return fmt.Errorf("%w: shard %s", ErrBreakerOpen, shard)
		}
		if c.Fault != nil {
			c.mu.Lock()
			round := c.round
			c.mu.Unlock()
			drop, delay := c.Fault.Intercept(op, shard, round, attempt)
			if delay > 0 {
				time.Sleep(delay)
			}
			if drop {
				lastErr = errDropped
				c.Obs.Attempt(op, "dropped")
				span.Event("attempt-dropped", fmt.Sprintf("attempt %d", attempt))
				if trans := c.record(shard, false); trans != "" {
					span.Event("breaker", trans)
				}
				continue
			}
		}
		var remaining time.Duration
		if !deadline.IsZero() {
			if remaining = time.Until(deadline); remaining <= 0 {
				c.Obs.Attempt(op, "budget")
				span.Event("budget-exhausted", fmt.Sprintf("attempt %d", attempt))
				return fmt.Errorf("%w: %s %s: %v", ErrBudgetExhausted, op, shard, lastErr)
			}
		}
		as := c.Tracer.StartChild(span.Context(), "rpc/attempt").
			SetTrack(shard).SetAttr("attempt", float64(attempt))
		lastErr = c.attempt(shard, method, path, body, out, remaining, as.Context())
		outcome := "ok"
		if lastErr != nil {
			outcome = "error"
			if re, isRemote := lastErr.(*RemoteError); isRemote && re.Overloaded {
				outcome = "overloaded"
			}
			as.SetAttr("error", 1)
		}
		c.Obs.Attempt(op, outcome)
		as.End()
		// A remote rejection means the shard is alive and answering — it
		// feeds the breaker as a success, whatever the application verdict.
		ok := lastErr == nil
		if _, isRemote := lastErr.(*RemoteError); isRemote {
			ok = true
		}
		if trans := c.record(shard, ok); trans != "" {
			span.Event("breaker", trans)
		}
		if lastErr == nil {
			return nil
		}
		if re, isRemote := lastErr.(*RemoteError); isRemote {
			if re.Overloaded {
				// Backpressure, not failure: honor Retry-After on the next
				// pass (budget permitting) instead of giving up.
				span.Event("overloaded", fmt.Sprintf("retry-after %dms", re.RetryAfterMS))
				continue
			}
			// The shard answered and rejected the request: retrying the
			// same request cannot succeed, and it is not a shard-health
			// signal either.
			return lastErr
		}
	}
	return fmt.Errorf("rpc: %s %s after %d attempts: %w", op, shard, c.cfg.Retries+1, lastErr)
}

// retryAfter extracts the shard's backpressure hint from an overloaded
// rejection; 0 when the error carries none.
func retryAfter(err error) time.Duration {
	var re *RemoteError
	if errors.As(err, &re) && re.Overloaded && re.RetryAfterMS > 0 {
		return time.Duration(re.RetryAfterMS) * time.Millisecond
	}
	return 0
}

// IsOverloaded reports whether err is a shard's admission-control rejection —
// backpressure to be absorbed, not a failure to investigate.
func IsOverloaded(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Overloaded
}

// IsExpired reports whether err is a shard's deadline rejection: the work's
// propagated budget was spent before the shard would have executed it.
func IsExpired(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Expired
}

// IsFenced reports whether err is a shard's stale-epoch rejection — the
// sender has lost router leadership and must stop mutating the fleet.
// Equivalent to errors.Is(err, ErrFencedEpoch).
func IsFenced(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Fenced
}

// optCtx unpacks the variadic parent-span parameter of the exported calls.
func optCtx(parents []obs.SpanContext) obs.SpanContext {
	if len(parents) == 0 {
		return obs.SpanContext{}
	}
	return parents[0]
}

// RemoteError is an application-level rejection from a shard (HTTP 4xx/5xx
// with an error body) — distinguished from transport errors, which drive
// retries and the breaker. Overloaded/RetryAfterMS/Expired/Fenced mirror the
// wire errorResponse; use IsOverloaded/IsExpired/IsFenced to classify.
type RemoteError struct {
	Shard        string
	Status       int
	Msg          string
	Overloaded   bool
	RetryAfterMS int
	Expired      bool
	// Fenced marks a stale-epoch rejection; Epoch is the shard's fence (the
	// highest epoch it has seen — ours was lower).
	Fenced bool
	Epoch  uint64
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: shard %s: %d %s", e.Shard, e.Status, e.Msg)
}

// Is lets errors.Is match the typed sentinels a remote rejection can carry:
// errors.Is(err, ErrFencedEpoch) is true for a fenced rejection.
func (e *RemoteError) Is(target error) bool {
	return target == ErrFencedEpoch && e.Fenced
}

// attempt performs one wire attempt. remaining, when positive, is the call's
// leftover end-to-end budget: it rides to the shard as Graf-Deadline-Ms and
// additionally bounds this attempt below the per-attempt Timeout.
func (c *Client) attempt(shard, method, path string, body []byte, out any, remaining time.Duration, trace ...obs.SpanContext) error {
	req, err := http.NewRequest(method, "http://"+shard+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tc := optCtx(trace); tc.Valid() {
		req.Header.Set(traceparentHeader, tc.Traceparent())
	}
	if e := c.epoch.Load(); e > 0 {
		req.Header.Set(epochHeader, strconv.FormatUint(e, 10))
	}
	if remaining > 0 {
		req.Header.Set(overload.HeaderDeadlineMS, overload.FormatRemaining(remaining))
		if remaining < c.cfg.Timeout {
			ctx, cancel := context.WithTimeout(context.Background(), remaining)
			defer cancel()
			req = req.WithContext(ctx)
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var er errorResponse
		msg := string(data)
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &RemoteError{Shard: shard, Status: resp.StatusCode, Msg: msg,
			Overloaded: er.Overloaded, RetryAfterMS: er.RetryAfterMS, Expired: er.Expired,
			Fenced: er.Fenced, Epoch: er.Epoch}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("rpc: decode response: %w", err)
		}
	}
	return nil
}

// Health probes a shard. It bypasses the breaker — it IS the probe the
// router uses to decide whether an unresponsive shard is dead — and carries
// no deadline: health must answer even on a shard that is shedding work.
func (c *Client) Health(shard string, parent ...obs.SpanContext) (HealthResponse, error) {
	var out HealthResponse
	span := c.Tracer.StartChild(optCtx(parent), "rpc/health").SetTrack(shard)
	err := c.attempt(shard, http.MethodGet, "/healthz", nil, &out, 0, span.Context())
	if err == nil {
		c.record(shard, true)
	} else {
		span.SetAttr("error", 1)
	}
	span.End()
	c.Obs.Attempt("health", map[bool]string{true: "ok", false: "error"}[err == nil])
	return out, err
}

// Configure installs the fleet spec on a shard.
func (c *Client) Configure(shard string, spec Spec, parent ...obs.SpanContext) error {
	return c.call(shard, http.MethodPost, "/v1/configure", "configure", ConfigureRequest{Spec: spec}, &ConfigureResponse{}, parent...)
}

// Admit places (or restores) a tenant on a shard.
func (c *Client) Admit(shard, id string, ticks int, parent ...obs.SpanContext) (AdmitResponse, error) {
	var out AdmitResponse
	err := c.call(shard, http.MethodPost, "/v1/admit", "admit", AdmitRequest{ID: id, Ticks: ticks}, &out, parent...)
	return out, err
}

// Evict drains a tenant off a shard.
func (c *Client) Evict(shard, id string, checkpoint bool, parent ...obs.SpanContext) (EvictResponse, error) {
	var out EvictResponse
	err := c.call(shard, http.MethodPost, "/v1/evict", "evict", EvictRequest{ID: id, Checkpoint: checkpoint}, &out, parent...)
	return out, err
}

// Tick advances a shard to the absolute round.
func (c *Client) Tick(shard string, round int, parent ...obs.SpanContext) (TickResponse, error) {
	var out TickResponse
	err := c.call(shard, http.MethodPost, "/v1/tick", "tick", TickRequest{Round: round}, &out, parent...)
	return out, err
}

// Quotas fetches the shard's per-tenant quota allocations.
func (c *Client) Quotas(shard string, parent ...obs.SpanContext) (QuotasResponse, error) {
	var out QuotasResponse
	err := c.call(shard, http.MethodGet, "/v1/quotas", "quotas", nil, &out, parent...)
	return out, err
}

// Tenants lists the shard's tenants.
func (c *Client) Tenants(shard string, parent ...obs.SpanContext) (TenantsResponse, error) {
	var out TenantsResponse
	err := c.call(shard, http.MethodGet, "/v1/tenants", "tenants", nil, &out, parent...)
	return out, err
}

// Decisions streams a tenant's retained decision records.
func (c *Client) Decisions(shard, tenant string, parent ...obs.SpanContext) (DecisionsResponse, error) {
	var out DecisionsResponse
	err := c.call(shard, http.MethodGet, "/v1/decisions?tenant="+url.QueryEscape(tenant), "decisions", nil, &out, parent...)
	return out, err
}

// Traces fetches the shard's retained trace spans, for cross-process
// stitching by the router.
func (c *Client) Traces(shard string, parent ...obs.SpanContext) (TracesResponse, error) {
	var out TracesResponse
	err := c.call(shard, http.MethodGet, "/v1/traces", "traces", nil, &out, parent...)
	return out, err
}

// Checkpoint snapshots every tenant on the shard.
func (c *Client) Checkpoint(shard string, parent ...obs.SpanContext) (CheckpointResponse, error) {
	var out CheckpointResponse
	err := c.call(shard, http.MethodPost, "/v1/checkpoint", "checkpoint", nil, &out, parent...)
	return out, err
}
