package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// ClientConfig tunes the router-side call discipline: per-attempt timeout,
// bounded retries with exponential backoff and full jitter, and a per-shard
// circuit breaker so one dead shard costs at most Threshold timeouts before
// subsequent calls fail fast instead of stalling the router loop.
type ClientConfig struct {
	// Timeout bounds each attempt (default 2s).
	Timeout time.Duration
	// Retries is how many times a failed call is retried (default 3; the
	// call is attempted 1+Retries times).
	Retries int
	// BackoffBase/BackoffMax bound the exponential backoff between
	// attempts (defaults 50ms / 1s); the actual sleep is uniform in
	// (0, min(BackoffMax, BackoffBase·2^attempt)] — full jitter.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold consecutive failures open a shard's breaker
	// (default 3); while open, calls to that shard fail immediately.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting one
	// probe through (half-open; default 2s).
	BreakerCooldown time.Duration
	// Seed makes the jitter sequence reproducible (0 = 1).
	Seed int64
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FaultInjector intercepts outbound control-plane requests — the seam
// chaos.NetInjector plugs into (structurally; rpc has no chaos dependency).
// op is the endpoint name ("tick", "admit", ...), shard the target address.
// Returning drop simulates the network losing the request; a positive delay
// is injected before the attempt.
type FaultInjector interface {
	Intercept(op, shard string, round, attempt int) (drop bool, delay time.Duration)
}

// ErrDropped is the injected-fault "network ate it" error.
var errDropped = fmt.Errorf("rpc: request dropped (injected fault)")

// ErrBreakerOpen is returned without touching the network while a shard's
// circuit breaker is open.
var ErrBreakerOpen = fmt.Errorf("rpc: circuit breaker open")

// breaker is a per-shard circuit breaker: closed (normal) → open after
// Threshold consecutive failures (calls fail fast) → half-open after
// Cooldown (one probe allowed; success closes, failure re-opens).
type breaker struct {
	failures int
	openAt   time.Time
	open     bool
	probing  bool
}

// Client is the router's HTTP client: typed wrappers over the wire protocol
// with retry/backoff/jitter and per-shard breakers. Safe for concurrent use.
type Client struct {
	cfg   ClientConfig
	http  *http.Client
	Fault FaultInjector

	mu       sync.Mutex
	breakers map[string]*breaker
	rng      *rand.Rand
	round    int
}

// NewClient builds a client. fault may be nil.
func NewClient(cfg ClientConfig, fault FaultInjector) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg:      cfg,
		http:     &http.Client{Timeout: cfg.Timeout},
		Fault:    fault,
		breakers: map[string]*breaker{},
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

// SetRound tells the client the current router round — the coordinate fault
// injection keys on, so chaos scenarios are expressed in rounds rather than
// wall time.
func (c *Client) SetRound(r int) {
	c.mu.Lock()
	c.round = r
	c.mu.Unlock()
}

// allow consults the shard's breaker before an attempt.
func (c *Client) allow(shard string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[shard]
	if b == nil {
		b = &breaker{}
		c.breakers[shard] = b
	}
	if !b.open {
		return true
	}
	if time.Since(b.openAt) >= c.cfg.BreakerCooldown && !b.probing {
		b.probing = true // half-open: exactly one probe
		return true
	}
	return false
}

func (c *Client) record(shard string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[shard]
	if b == nil {
		b = &breaker{}
		c.breakers[shard] = b
	}
	if ok {
		*b = breaker{}
		return
	}
	b.probing = false
	b.failures++
	if b.failures >= c.cfg.BreakerThreshold {
		b.open = true
		b.openAt = time.Now()
	}
}

// ResetBreaker force-closes a shard's breaker (after a respawn installs a
// fresh process behind the same address).
func (c *Client) ResetBreaker(shard string) {
	c.mu.Lock()
	delete(c.breakers, shard)
	c.mu.Unlock()
}

// backoff returns the full-jitter sleep before retry attempt n (1-based).
func (c *Client) backoff(attempt int) time.Duration {
	max := c.cfg.BackoffBase << uint(attempt-1)
	if max > c.cfg.BackoffMax {
		max = c.cfg.BackoffMax
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(max)) + 1)
	c.mu.Unlock()
	return d
}

// call performs one logical request with the full discipline. out may be nil.
func (c *Client) call(shard, method, path, op string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("rpc: encode %s: %w", op, err)
		}
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff(attempt))
		}
		if !c.allow(shard) {
			return fmt.Errorf("%w: shard %s", ErrBreakerOpen, shard)
		}
		if c.Fault != nil {
			c.mu.Lock()
			round := c.round
			c.mu.Unlock()
			drop, delay := c.Fault.Intercept(op, shard, round, attempt)
			if delay > 0 {
				time.Sleep(delay)
			}
			if drop {
				lastErr = errDropped
				c.record(shard, false)
				continue
			}
		}
		lastErr = c.attempt(shard, method, path, body, out)
		c.record(shard, lastErr == nil)
		if lastErr == nil {
			return nil
		}
		if _, fatal := lastErr.(*RemoteError); fatal {
			// The shard answered and rejected the request: retrying the
			// same request cannot succeed, and it is not a shard-health
			// signal either.
			c.record(shard, true)
			return lastErr
		}
	}
	return fmt.Errorf("rpc: %s %s after %d attempts: %w", op, shard, c.cfg.Retries+1, lastErr)
}

// RemoteError is an application-level rejection from a shard (HTTP 4xx/5xx
// with an error body) — distinguished from transport errors, which drive
// retries and the breaker.
type RemoteError struct {
	Shard  string
	Status int
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: shard %s: %d %s", e.Shard, e.Status, e.Msg)
}

func (c *Client) attempt(shard, method, path string, body []byte, out any) error {
	req, err := http.NewRequest(method, "http://"+shard+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var er errorResponse
		msg := string(data)
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &RemoteError{Shard: shard, Status: resp.StatusCode, Msg: msg}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("rpc: decode response: %w", err)
		}
	}
	return nil
}

// Health probes a shard. It bypasses the breaker — it IS the probe the
// router uses to decide whether an unresponsive shard is dead.
func (c *Client) Health(shard string) (HealthResponse, error) {
	var out HealthResponse
	err := c.attempt(shard, http.MethodGet, "/healthz", nil, &out)
	if err == nil {
		c.record(shard, true)
	}
	return out, err
}

// Configure installs the fleet spec on a shard.
func (c *Client) Configure(shard string, spec Spec) error {
	return c.call(shard, http.MethodPost, "/v1/configure", "configure", ConfigureRequest{Spec: spec}, &ConfigureResponse{})
}

// Admit places (or restores) a tenant on a shard.
func (c *Client) Admit(shard, id string, ticks int) (AdmitResponse, error) {
	var out AdmitResponse
	err := c.call(shard, http.MethodPost, "/v1/admit", "admit", AdmitRequest{ID: id, Ticks: ticks}, &out)
	return out, err
}

// Evict drains a tenant off a shard.
func (c *Client) Evict(shard, id string, checkpoint bool) (EvictResponse, error) {
	var out EvictResponse
	err := c.call(shard, http.MethodPost, "/v1/evict", "evict", EvictRequest{ID: id, Checkpoint: checkpoint}, &out)
	return out, err
}

// Tick advances a shard to the absolute round.
func (c *Client) Tick(shard string, round int) (TickResponse, error) {
	var out TickResponse
	err := c.call(shard, http.MethodPost, "/v1/tick", "tick", TickRequest{Round: round}, &out)
	return out, err
}

// Quotas fetches the shard's per-tenant quota allocations.
func (c *Client) Quotas(shard string) (QuotasResponse, error) {
	var out QuotasResponse
	err := c.call(shard, http.MethodGet, "/v1/quotas", "quotas", nil, &out)
	return out, err
}

// Tenants lists the shard's tenants.
func (c *Client) Tenants(shard string) (TenantsResponse, error) {
	var out TenantsResponse
	err := c.call(shard, http.MethodGet, "/v1/tenants", "tenants", nil, &out)
	return out, err
}

// Decisions streams a tenant's retained decision records.
func (c *Client) Decisions(shard, tenant string) (DecisionsResponse, error) {
	var out DecisionsResponse
	err := c.call(shard, http.MethodGet, "/v1/decisions?tenant="+url.QueryEscape(tenant), "decisions", nil, &out)
	return out, err
}

// Checkpoint snapshots every tenant on the shard.
func (c *Client) Checkpoint(shard string) (CheckpointResponse, error) {
	var out CheckpointResponse
	err := c.call(shard, http.MethodPost, "/v1/checkpoint", "checkpoint", nil, &out)
	return out, err
}
