package rpc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"graf/internal/ckpt"
	"graf/internal/obs"
)

// Durable router state (DESIGN.md §3k). The router persists everything a
// replacement needs to take over — ring membership, tenant→shard placement,
// the round counter, any migration-in-progress record, and the per-slot
// restart-budget counters — as a gob blob in the shared checkpoint
// directory's "router" namespace, written atomically at round boundaries and
// at every placement mutation. The shards remain the system of record for
// tenant *state*; this blob is only the map and the clock, so a stale
// snapshot costs a reconcile pass, never correctness.

// persistedSlot mirrors shardSlot on disk.
type persistedSlot struct {
	Slot     int
	Addr     string
	Alive    bool
	Respawns int
}

// persistedTenant mirrors the placement-relevant half of tenantState.
type persistedTenant struct {
	ID       string
	Shard    string
	Pinned   bool
	Ticks    int
	AuditLen int
	AuditFNV uint64
	Brownout int
}

// migrationRecord marks a migration in flight: persisted before the drain
// and updated after it, so a router that dies between drain and restore
// leaves behind exactly what reconcile needs to roll the move forward (the
// tenant's audit log and checkpoint are intact on the source) or back.
type migrationRecord struct {
	Tenant string
	From   string
	To     string
	// Drained reports the evict on From completed — the tenant is running
	// nowhere and roll-forward is the cheapest completion.
	Drained bool
}

// routerState is the gob payload carried in ckpt.Snapshot.Opaque.
type routerState struct {
	Epoch     uint64
	Round     int
	Slots     []persistedSlot
	Tenants   []persistedTenant
	Migration *migrationRecord
}

func encodeRouterState(st *routerState) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeRouterState(b []byte) (*routerState, error) {
	var st routerState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return nil, fmt.Errorf("rpc: undecodable router state: %w", err)
	}
	return &st, nil
}

// routerStoreName is the ckpt namespace the router persists under.
const routerStoreName = "router"

// openRouterStore opens the router's namespaced generation store.
func openRouterStore(dir string) (*ckpt.Store, error) {
	return ckpt.NewNamespacedStore(dir, routerStoreName)
}

// loadRouterState returns the newest valid persisted router state, or
// ckpt.ErrNoSnapshot when the store holds none.
func loadRouterState(dir string) (*routerState, error) {
	store, err := openRouterStore(dir)
	if err != nil {
		return nil, err
	}
	snap, err := store.LoadLatest()
	if err != nil {
		return nil, err
	}
	return decodeRouterState(snap.Opaque)
}

// snapshotLocked captures the router's durable state. Callers hold r.mu.
func (r *Router) snapshotLocked() *routerState {
	st := &routerState{Epoch: r.epoch, Round: r.round, Migration: r.migration}
	for _, s := range r.slots {
		st.Slots = append(st.Slots, persistedSlot{
			Slot: s.slot, Addr: s.addr, Alive: s.alive, Respawns: s.respawns,
		})
	}
	ids := make([]string, 0, len(r.tenants))
	for id := range r.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := r.tenants[id]
		st.Tenants = append(st.Tenants, persistedTenant{
			ID: t.id, Shard: t.shard, Pinned: t.pinned, Ticks: t.ticks,
			AuditLen: t.auditLen, AuditFNV: t.auditFNV, Brownout: t.brownout,
		})
	}
	return st
}

// persistLocked checkpoints the router's state. Callers hold r.mu. A fenced
// router never persists: it has lost leadership and must not overwrite its
// successor's newer snapshots in the shared store. Persistence failures are
// surfaced in stats and the log but do not stop the round loop — a router
// with a full disk degrades to PR-6 in-memory behavior rather than halting
// the fleet.
func (r *Router) persistLocked() {
	if r.store == nil || r.fenced.Load() {
		return
	}
	blob, err := encodeRouterState(r.snapshotLocked())
	if err == nil {
		_, _, err = r.store.Save(&ckpt.Snapshot{
			At:     float64(r.round),
			Ticks:  r.round,
			Opaque: blob,
		})
	}
	if err != nil {
		r.stats.PersistErrors++
		r.logf("router: persist round %d failed: %v", r.round, err)
	}
}

// ReconcileReport summarizes one anti-entropy pass: what a resumed or
// standby router found when it compared its checkpointed placement against
// every shard's reported residency.
type ReconcileReport struct {
	// Epoch is the resumed generation's fencing epoch (previous + 1).
	Epoch uint64
	// Round is the round counter the generation resumes from.
	Round int
	// ShardsScanned/ShardsDead count the /v1/tenants sweep.
	ShardsScanned int
	ShardsDead    int
	// Confirmed tenants were exactly where the checkpoint said; Adopted had
	// moved (shard-reported residency wins); Orphaned were resident nowhere
	// and re-placed through the ring; DupEvicted duplicate residencies were
	// evicted from the losing shard.
	Confirmed  int
	Adopted    int
	Orphaned   int
	DupEvicted int
	// MigrationTenant/MigrationAction describe how a mid-flight migration
	// record was resolved: "completed" (target already held the tenant),
	// "rolled-forward" (re-admitted on the target), "rolled-back" (restored
	// to the source), "re-placed" (both unreachable, ring placement), or ""
	// (no migration was in flight).
	MigrationTenant string
	MigrationAction string
}

// String renders the audit-visible one-line summary.
func (rep *ReconcileReport) String() string {
	s := fmt.Sprintf("reconcile: epoch=%d round=%d shards=%d dead=%d confirmed=%d adopted=%d orphaned=%d dup_evicted=%d",
		rep.Epoch, rep.Round, rep.ShardsScanned, rep.ShardsDead,
		rep.Confirmed, rep.Adopted, rep.Orphaned, rep.DupEvicted)
	if rep.MigrationAction != "" {
		s += fmt.Sprintf(" migration=%s:%s", rep.MigrationTenant, rep.MigrationAction)
	}
	return s
}

// ResumeRouter rebuilds a router from the durable state in
// cfg.StateDir — the warm-restore path behind `grafrouter -resume` and the
// standby's takeover. It bumps the fencing epoch past the dead generation's
// (and persists the bump before touching any shard, so a crash mid-resume
// bumps again rather than reusing an epoch), then runs the anti-entropy
// reconcile: scan every checkpointed shard's /v1/tenants, let shard-reported
// residency win, roll a mid-flight migration forward or back, and re-place
// orphans through the ring. The returned router continues the round sequence
// where the checkpoint left off.
func ResumeRouter(cfg RouterConfig) (*Router, *ReconcileReport, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDir == "" {
		return nil, nil, fmt.Errorf("rpc: ResumeRouter needs cfg.StateDir")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, nil, err
	}
	st, err := loadRouterState(cfg.StateDir)
	if err != nil {
		if errors.Is(err, ckpt.ErrNoSnapshot) {
			return nil, nil, fmt.Errorf("rpc: nothing to resume: %w", err)
		}
		return nil, nil, fmt.Errorf("rpc: load router state: %w", err)
	}
	store, err := openRouterStore(cfg.StateDir)
	if err != nil {
		return nil, nil, err
	}
	r := &Router{
		cfg:       cfg,
		client:    NewClient(cfg.Client, cfg.Fault),
		ring:      NewRing(cfg.VNodes),
		tenants:   map[string]*tenantState{},
		store:     store,
		epoch:     st.Epoch + 1,
		round:     st.Round,
		migration: st.Migration,
	}
	r.client.Obs = cfg.RPCObs
	r.client.Tracer = cfg.Tracer
	r.client.SetEpoch(r.epoch)
	for _, ps := range st.Slots {
		s := &shardSlot{slot: ps.Slot, addr: ps.Addr, alive: ps.Alive, respawns: ps.Respawns}
		r.slots = append(r.slots, s)
		if s.alive {
			r.ring.Add(s.addr)
		}
	}
	for _, pt := range st.Tenants {
		r.tenants[pt.ID] = &tenantState{
			id: pt.ID, shard: pt.Shard, pinned: pt.Pinned, ticks: pt.Ticks,
			auditLen: pt.AuditLen, auditFNV: pt.AuditFNV, brownout: pt.Brownout,
		}
	}
	// Durably claim the new epoch before the first shard call: the first
	// mutating RPC raises every shard's fence to it, and re-using an epoch
	// after a crash-during-reconcile would let the previous zombie back in.
	r.mu.Lock()
	r.persistLocked()
	r.mu.Unlock()

	rep, err := r.reconcile()
	if err != nil {
		return nil, rep, err
	}
	return r, rep, nil
}

// reconcile is the anti-entropy pass: declared (checkpointed) placement vs.
// observed (shard-reported) residency, observed wins.
func (r *Router) reconcile() (*ReconcileReport, error) {
	var span *obs.ActiveSpan
	if r.cfg.Tracer != nil {
		span = r.cfg.Tracer.StartRoot("router/reconcile")
	}
	defer span.End()
	rep := &ReconcileReport{Epoch: r.epoch, Round: r.round}

	// Sweep every checkpointed slot — including ones marked dead, which may
	// have been respawned behind the router's back. A slot that answers is
	// (re-)adopted into the ring; one that does not is marked dead so its
	// tenants flow through the orphan path below.
	type residence struct {
		addr string
		st   TenantStatus
	}
	resident := map[string][]residence{}
	r.mu.Lock()
	slots := append([]*shardSlot(nil), r.slots...)
	r.mu.Unlock()
	for _, s := range slots {
		resp, err := r.client.Tenants(s.addr, span.Context())
		r.mu.Lock()
		if err != nil {
			if s.alive {
				s.alive = false
				r.ring.Remove(s.addr)
			}
			rep.ShardsDead++
			r.mu.Unlock()
			r.logf("reconcile: shard %d (%s) unreachable: %v", s.slot, s.addr, err)
			continue
		}
		if !s.alive {
			s.alive = true
			r.ring.Add(s.addr)
			r.logf("reconcile: shard %d (%s) re-adopted into the ring", s.slot, s.addr)
		}
		rep.ShardsScanned++
		r.mu.Unlock()
		for _, st := range resp.Statuses {
			resident[st.ID] = append(resident[st.ID], residence{addr: s.addr, st: st})
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.aliveSlotsLocked()) == 0 {
		return rep, fmt.Errorf("rpc: reconcile: no live shards")
	}

	// Duplicate residency (a lost admit response followed by a rollback can
	// leave a tenant on two shards): keep the furthest-ahead copy — ties
	// broken toward the in-flight migration's target, then lexicographic for
	// determinism — and evict the rest.
	ids := make([]string, 0, len(resident))
	for id := range resident {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		homes := resident[id]
		if len(homes) <= 1 {
			continue
		}
		sort.Slice(homes, func(i, j int) bool {
			if homes[i].st.Ticks != homes[j].st.Ticks {
				return homes[i].st.Ticks > homes[j].st.Ticks
			}
			if m := r.migration; m != nil && m.Tenant == id {
				if (homes[i].addr == m.To) != (homes[j].addr == m.To) {
					return homes[i].addr == m.To
				}
			}
			return homes[i].addr < homes[j].addr
		})
		for _, h := range homes[1:] {
			if _, err := r.client.Evict(h.addr, id, false, span.Context()); err != nil {
				return rep, fmt.Errorf("rpc: reconcile: evict duplicate %s from %s: %w", id, h.addr, err)
			}
			rep.DupEvicted++
			r.logf("reconcile: tenant %s duplicate on %s evicted (kept %s at tick %d)",
				id, h.addr, homes[0].addr, homes[0].st.Ticks)
		}
		resident[id] = homes[:1]
	}

	// Observed residency wins over the checkpointed map.
	for _, id := range ids {
		h := resident[id][0]
		t := r.tenants[id]
		if t == nil {
			// A tenant the checkpoint predates: adopt it wholesale.
			t = &tenantState{id: id}
			r.tenants[id] = t
		}
		if t.shard == h.addr {
			rep.Confirmed++
		} else {
			rep.Adopted++
			r.logf("reconcile: tenant %s adopted at %s (checkpoint said %q)", id, h.addr, t.shard)
			t.shard = h.addr
		}
		r.noteStatus(h.st)
	}

	// Tenants the checkpoint places on a shard that no longer holds them
	// are unplaced BEFORE migration handling, so a mid-flight migration's
	// tenant (drained off its source, restored nowhere) enters that branch
	// already unplaced and is not re-orphaned after the roll-forward.
	for _, t := range r.tenants {
		if t.shard != "" && len(resident[t.id]) == 0 {
			r.logf("reconcile: tenant %s missing from %s", t.id, t.shard)
			t.shard = ""
			t.pinned = false
		}
	}

	// A mid-flight migration whose tenant is resident nowhere is rolled
	// forward onto its target (audit log and checkpoint are intact in the
	// shared stores); if the target is gone, rolled back to the source; if
	// both are gone, the ring re-places it with the other orphans.
	if m := r.migration; m != nil {
		rep.MigrationTenant = m.Tenant
		if homes := resident[m.Tenant]; len(homes) > 0 {
			if homes[0].addr == m.To {
				rep.MigrationAction = "completed"
				if t := r.tenants[m.Tenant]; t != nil {
					t.pinned = true
				}
			} else {
				rep.MigrationAction = "rolled-back"
			}
		} else if t := r.tenants[m.Tenant]; t != nil {
			t.shard = ""
			if r.isAliveLocked(m.To) && r.placeTenant(m.Tenant, m.To, span.Context()) == nil {
				t.pinned = true
				rep.MigrationAction = "rolled-forward"
			} else if m.From != "" && r.isAliveLocked(m.From) && r.placeTenant(m.Tenant, m.From, span.Context()) == nil {
				t.pinned = false
				rep.MigrationAction = "rolled-back"
			} else {
				t.pinned = false
				rep.MigrationAction = "re-placed"
			}
			r.logf("reconcile: migration %s (%s → %s, drained=%v) %s",
				m.Tenant, m.From, m.To, m.Drained, rep.MigrationAction)
		}
		r.migration = nil
	}

	// Everything still unplaced goes through the standard ring placement.
	for _, t := range r.tenants {
		if t.shard == "" {
			rep.Orphaned++
		}
	}
	if err := r.placeUnplacedLocked(); err != nil {
		return rep, fmt.Errorf("rpc: reconcile: %w", err)
	}

	r.persistLocked()
	r.cfg.Obs.Reconcile(rep.Epoch, rep.Confirmed, rep.Adopted, rep.Orphaned, rep.DupEvicted)
	r.logf("%s", rep.String())
	return rep, nil
}

// isAliveLocked reports whether addr is a live slot. Callers hold r.mu.
func (r *Router) isAliveLocked(addr string) bool {
	for _, s := range r.slots {
		if s.addr == addr && s.alive {
			return true
		}
	}
	return false
}
