package rpc

import "graf/internal/obs"

// Wire protocol (DESIGN.md §3h). Every endpoint is HTTP/JSON; errors are
// {"error": "..."} with a non-2xx status. Requests carry absolute state
// (round indices, tick counts) rather than deltas, so any request can be
// retried or duplicated without corrupting a shard — the shard applies it
// idempotently.

// TenantStatus is the per-tenant accounting a shard reports after every
// operation. AuditLen/AuditFNV fingerprint the tenant's full audit stream;
// the router uses them to verify lossless migration and recovery without
// moving log bytes over the wire.
type TenantStatus struct {
	ID       string  `json:"id"`
	Ticks    int     `json:"ticks"`
	P99      float64 `json:"p99"`
	ViolS    float64 `json:"viol_s"`
	Degraded bool    `json:"degraded,omitempty"`
	AuditLen int     `json:"audit_len"`
	AuditFNV uint64  `json:"audit_fnv"`
	// Brownout is the tenant's current degradation-ladder rung
	// (0=full … 3=hold); see internal/overload.
	Brownout int `json:"brownout,omitempty"`
}

// HealthResponse answers GET /healthz — the router's heartbeat probe. It is
// served entirely from atomic mirrors, never from under the fleet mutex, so
// a long round cannot be mistaken for a dead shard.
type HealthResponse struct {
	OK      bool   `json:"ok"`
	PID     int    `json:"pid"`
	Tenants int    `json:"tenants"`
	Round   int    `json:"round"`
	Uptime  string `json:"uptime"`
	// Overload accounting, served from the admission gate and shed counters.
	Inflight        int   `json:"inflight,omitempty"`
	Shed            int64 `json:"shed,omitempty"`
	ExpiredShed     int64 `json:"expired_shed,omitempty"`
	ExpiredExecuted int64 `json:"expired_executed,omitempty"`
	// Epoch is the highest router epoch this shard has seen on a mutating
	// request — the fence a zombie router's writes are rejected against.
	// FencedRejected counts stale-epoch mutations refused; FencedAccepted is
	// the invariant tripwire (a stale-epoch mutation that executed) and must
	// stay zero.
	Epoch          uint64 `json:"epoch,omitempty"`
	FencedRejected int64  `json:"fenced_rejected,omitempty"`
	FencedAccepted int64  `json:"fenced_accepted,omitempty"`
}

// RouterHealth answers GET /v1/router/healthz on the *router's* own control
// address (grafrouter -router-addr) — the standby's liveness probe. Sustained
// probe failure is the takeover trigger; Fenced lets an operator spot a
// zombie generation that is still running but has lost leadership.
type RouterHealth struct {
	OK     bool   `json:"ok"`
	PID    int    `json:"pid"`
	Epoch  uint64 `json:"epoch"`
	Round  int    `json:"round"`
	Fenced bool   `json:"fenced"`
}

// ConfigureRequest (POST /v1/configure) installs the fleet spec; the shard
// builds an empty dynamic fleet from it. Reconfiguring a shard that already
// holds tenants is an error — evict them first.
type ConfigureRequest struct {
	Spec Spec `json:"spec"`
}

type ConfigureResponse struct {
	OK bool `json:"ok"`
}

// AdmitRequest (POST /v1/admit) places a tenant on the shard. Ticks is the
// router's last known completed tick count: zero admits a fresh tenant,
// positive fast-forwards the rebuilt tenant by deterministic re-execution.
// The shard repairs and re-reads any on-disk audit log for the tenant first
// and replays past Ticks if the log proves the previous owner got further —
// the zero-lost-decisions guarantee. Admit is idempotent: if the tenant is
// already resident (a retried request whose first attempt's response was
// lost), the shard fast-forwards it to Ticks if behind and reports its
// current status instead of rejecting.
type AdmitRequest struct {
	ID    string `json:"id"`
	Ticks int    `json:"ticks"`
}

type AdmitResponse struct {
	Status TenantStatus `json:"status"`
	// PriorBytes is how many audit bytes the previous owner had durably
	// recorded for this tenant (0 = fresh admit).
	PriorBytes int `json:"prior_bytes,omitempty"`
	// PriorVerified reports that the regenerated audit stream reproduced
	// the prior bytes exactly (always true on success; a mismatch fails the
	// admit).
	PriorVerified bool `json:"prior_verified,omitempty"`
	// ReplayedTicks counts ticks re-executed beyond the router's Ticks to
	// cover decisions the dead owner had flushed but never reported.
	ReplayedTicks int `json:"replayed_ticks,omitempty"`
	// SnapshotVerified reports that the rebuilt controller state matched
	// the tenant's latest checkpoint digest (only attempted when a
	// checkpoint at the same tick exists).
	SnapshotVerified bool `json:"snapshot_verified,omitempty"`
}

// EvictRequest (POST /v1/evict) drains a tenant off the shard — the first
// half of a planned migration. With Checkpoint set the shard snapshots the
// tenant into its checkpoint store before removal, so the target can verify
// its rebuilt state against it. Evict is idempotent: evicting a tenant that
// is not resident succeeds with Missing set rather than 404, so a retried
// drain whose first attempt completed does not abort the migration.
type EvictRequest struct {
	ID         string `json:"id"`
	Checkpoint bool   `json:"checkpoint"`
}

type EvictResponse struct {
	Status TenantStatus `json:"status"`
	// Missing reports the tenant was not resident — a retried evict whose
	// first attempt already removed it (or an evict for a tenant never
	// admitted). Status carries only the ID in that case, no accounting.
	Missing bool `json:"missing,omitempty"`
}

// TickRequest (POST /v1/tick) advances the shard to the absolute round
// index. Only tenants behind the round are ticked, so a duplicated or
// retried tick is a no-op; the shard flushes every tenant's on-disk audit
// log before answering, so the durable log is never behind what the router
// has been told.
type TickRequest struct {
	Round int `json:"round"`
}

type TickResponse struct {
	Round    int            `json:"round"`
	Statuses []TenantStatus `json:"statuses"`
}

// QuotasResponse (GET /v1/quotas) reports current per-tenant, per-service
// quota allocations.
type QuotasResponse struct {
	Quotas map[string]map[string]float64 `json:"quotas"`
}

// TenantsResponse (GET /v1/tenants) lists the shard's tenants.
type TenantsResponse struct {
	Statuses []TenantStatus `json:"statuses"`
}

// DecisionsResponse (GET /v1/decisions?tenant=ID) streams the tenant's
// retained decision records.
type DecisionsResponse struct {
	Tenant  string       `json:"tenant"`
	Records []obs.Record `json:"records"`
}

// TracesResponse (GET /v1/traces) returns the shard's retained control-plane
// trace spans; the router merges every shard's spans with its own to stitch
// cross-process traces and export Chrome trace-event JSON.
type TracesResponse struct {
	Proc  string          `json:"proc"`
	Spans []obs.TraceSpan `json:"spans"`
}

// CheckpointResponse (POST /v1/checkpoint) reports how many tenants were
// snapshotted into the shard's checkpoint store.
type CheckpointResponse struct {
	Saved int `json:"saved"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Overloaded marks a 429-style admission rejection: the shard is alive
	// and healthy but shedding this priority class. RetryAfterMS is its
	// backpressure hint. Clients and the router treat this as backpressure,
	// not shard failure — it must not trip breakers or trigger recovery.
	Overloaded   bool `json:"overloaded,omitempty"`
	RetryAfterMS int  `json:"retry_after_ms,omitempty"`
	// Expired marks a 504-style deadline rejection: the request's propagated
	// end-to-end budget was already exhausted when the shard picked it up, so
	// the shard refused to execute it (executing expired work is the bug the
	// overload subsystem exists to prevent).
	Expired bool `json:"expired,omitempty"`
	// Fenced marks a 409 stale-epoch rejection: the request's Graf-Epoch is
	// older than the highest this shard has seen, so the sender is a router
	// generation that lost leadership. Epoch carries the shard's fence so the
	// zombie can see exactly how far behind it is. Fenced is fatal to the
	// sender's round loop — retrying cannot succeed, a newer router owns the
	// fleet.
	Fenced bool   `json:"fenced,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
}

// epochHeader carries the router generation's epoch on every mutating shard
// RPC (DESIGN.md §3k). Shards remember the highest epoch seen and reject
// anything older with a typed 409, so a zombie router that lost leadership
// can never double-drive a migration or re-admit a tenant. Read-only
// endpoints are deliberately unfenced: a stale router reading status is
// harmless, and the standby needs /v1/tenants before it owns an epoch.
const epochHeader = "Graf-Epoch"
