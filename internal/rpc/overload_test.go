package rpc

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graf/internal/chaos"
	"graf/internal/fleet"
	"graf/internal/overload"
)

// TestClientOpBudgetBoundsElapsed pins the end-to-end budget contract: under
// injected per-attempt latency, a call with an OpBudget returns within the
// budget (plus one attempt's slack — an in-flight attempt is cancelled by
// context, not abandoned instantly), fails typed with ErrBudgetExhausted,
// and every attempt that did go out carried a positive, non-increasing
// Graf-Deadline-Ms budget.
func TestClientOpBudgetBoundsElapsed(t *testing.T) {
	var mu sync.Mutex
	var headers []int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := r.Header.Get(overload.HeaderDeadlineMS); h != "" {
			ms, err := strconv.ParseInt(h, 10, 64)
			if err != nil {
				t.Errorf("malformed deadline header %q: %v", h, err)
			}
			mu.Lock()
			headers = append(headers, ms)
			mu.Unlock()
		}
		// Injected latency, then a connection drop: the client sees a slow
		// transport failure and retries until the budget refuses.
		time.Sleep(100 * time.Millisecond)
		hj, _ := w.(http.Hijacker)
		conn, _, _ := hj.Hijack()
		conn.Close()
	}))
	defer ts.Close()
	shard := strings.TrimPrefix(ts.URL, "http://")

	const budget = 300 * time.Millisecond
	c := NewClient(ClientConfig{
		Timeout:     2 * time.Second,
		Retries:     10, // budget must stop the loop, not retry exhaustion
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
		OpBudget:    budget,
	}, nil)

	start := time.Now()
	err := c.call(shard, http.MethodGet, "/healthz", "health", nil, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	// Slack: one in-flight attempt (100ms injected latency) plus scheduling
	// noise. The point is that elapsed tracks the budget, not Retries×Timeout.
	if elapsed > budget+500*time.Millisecond {
		t.Fatalf("call took %v with a %v budget", elapsed, budget)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(headers) == 0 {
		t.Fatal("no attempt carried the deadline header")
	}
	for i, ms := range headers {
		if ms <= 0 || time.Duration(ms)*time.Millisecond > budget {
			t.Errorf("attempt %d: remaining budget %dms outside (0, %v]", i, ms, budget)
		}
		if i > 0 && ms > headers[i-1] {
			t.Errorf("attempt %d: remaining budget grew %dms -> %dms", i, headers[i-1], ms)
		}
	}
}

// TestBreakerHalfOpenSingleProbe races concurrent callers against a breaker
// entering half-open: exactly one probe may reach the shard, losers fail
// fast with the typed ErrBreakerOpen, and the successful probe closes the
// breaker. Run under -race this also proves the breaker's internal state is
// properly synchronized.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var probeCalls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		probeCalls.Add(1)
		// Hold the probe in flight so every racing caller sees half-open.
		time.Sleep(100 * time.Millisecond)
		writeJSON(w, http.StatusOK, HealthResponse{OK: true})
	}))
	defer ts.Close()
	shard := strings.TrimPrefix(ts.URL, "http://")

	c := NewClient(ClientConfig{
		Timeout: time.Second, Retries: -1, // single attempt per call
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 30 * time.Millisecond,
	}, nil)

	for i := 0; i < 2; i++ {
		if err := c.call(shard, http.MethodGet, "/healthz", "health", nil, nil); err == nil {
			t.Fatal("expected transport failure")
		}
	}
	if err := c.call(shard, http.MethodGet, "/healthz", "health", nil, nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker not open after threshold failures: %v", err)
	}

	failing.Store(false)
	time.Sleep(50 * time.Millisecond) // past cooldown: next allow() goes half-open

	const n = 8
	start := make(chan struct{})
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			err := c.call(shard, http.MethodGet, "/healthz", "health", nil, nil)
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrBreakerOpen):
				rejected.Add(1)
			default:
				t.Errorf("unexpected error class: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := probeCalls.Load(); got != 1 {
		t.Errorf("half-open admitted %d concurrent probes, want exactly 1", got)
	}
	if ok.Load() != 1 || rejected.Load() != n-1 {
		t.Errorf("ok=%d rejected=%d, want 1/%d", ok.Load(), rejected.Load(), n-1)
	}
	if err := c.call(shard, http.MethodGet, "/healthz", "health", nil, nil); err != nil {
		t.Errorf("breaker did not close after successful probe: %v", err)
	}
}

// TestShardAdmissionShedsTyped exercises the shard-side overload shield:
// a full gate sheds low-priority reads with the typed 429 verdict, critical
// endpoints keep answering (and report the overload accounting), the
// backpressure never trips the client breaker, and a request arriving with
// an already-expired propagated deadline is refused with the typed 504
// before any work happens.
func TestShardAdmissionShedsTyped(t *testing.T) {
	bundle := testBundle(t)
	s, addr := startShard(t, bundle, "", "")
	s.MaxInflight = 1 // before the first request builds the gate
	c := NewClient(fastClient(), nil)
	if err := c.Configure(addr, testSpec()); err != nil {
		t.Fatal(err)
	}

	release, err := s.admission().Enter(overload.PriHigh)
	if err != nil {
		t.Fatal(err)
	}
	_, terr := c.Tenants(addr)
	if !IsOverloaded(terr) {
		t.Fatalf("full gate: want typed overloaded error, got %v", terr)
	}
	var re *RemoteError
	if errors.As(terr, &re) && re.RetryAfterMS <= 0 {
		t.Errorf("overloaded verdict carries no Retry-After hint: %+v", re)
	}

	h, err := c.Health(addr)
	if err != nil {
		t.Fatalf("critical endpoint shed under load: %v", err)
	}
	if h.Shed == 0 {
		t.Errorf("health reports no sheds after a shed: %+v", h)
	}
	if h.ExpiredExecuted != 0 {
		t.Errorf("expired work executed: %+v", h)
	}

	// Backpressure must not have opened the breaker: once capacity returns,
	// the same client reaches the shard immediately.
	release()
	if _, err := c.Tenants(addr); err != nil {
		t.Errorf("tenants after release: %v (breaker tripped by backpressure?)", err)
	}

	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/v1/tenants", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(overload.HeaderDeadlineMS, "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d, want 504", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || !er.Expired {
		t.Fatalf("expired deadline verdict not typed: %+v (err %v)", er, err)
	}
	h2, err := c.Health(addr)
	if err != nil {
		t.Fatal(err)
	}
	if h2.ExpiredShed == 0 {
		t.Errorf("health reports no expired sheds: %+v", h2)
	}
	if h2.ExpiredExecuted != 0 {
		t.Errorf("expired work executed: %+v", h2)
	}
}

// TestRouterOverloadDrillByteIdentical is the end-to-end overload drill: a
// 2-shard fleet with a scripted brownout window runs budgeted rounds through
// an injected latency burst. The burst must be absorbed as SHED ticks and
// partial rounds — never escalated into shard recovery — no expired work may
// execute, and after Settle catches the shed shards up, every tenant's audit
// log must be byte-identical to the unbudgeted single-process reference.
func TestRouterOverloadDrillByteIdentical(t *testing.T) {
	bundle := testBundle(t)
	audit := t.TempDir()
	_, addr1 := startShard(t, bundle, "", audit)
	_, addr2 := startShard(t, bundle, "", audit)

	spec := testSpec()
	spec.Brownout = []fleet.BrownoutPhase{{FromTick: 3, ToTick: 6, Step: overload.StepHeuristic}}
	ids := tenantIDs(6)
	const rounds = 10

	// Overload burst: rounds 4-5 every tick attempt eats 600ms of injected
	// latency — far past the 250ms round budget, so those ticks must shed.
	inj := chaos.NewNetInjector(chaos.NetScenario{
		Seed: 21,
		Events: []chaos.NetEvent{
			{Kind: chaos.NetDelay, FromRound: 4, ToRound: 5, Op: "tick", P: 1, DelayMS: 600},
		},
	})
	r, err := NewRouter(RouterConfig{
		Spec: spec, Tenants: ids, Client: fastClient(), Fault: inj,
		RoundBudget: 250 * time.Millisecond,
		Logf:        t.Logf,
	}, []string{addr1, addr2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if err := r.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}

	st := r.Stats()
	if st.ShedTicks == 0 || st.PartialRounds == 0 {
		t.Fatalf("stats %+v: overload burst shed nothing", st)
	}
	if st.Respawns != 0 || st.Reassignments != 0 {
		t.Fatalf("stats %+v: shed ticks escalated into shard recovery", st)
	}
	if st.Rounds != rounds {
		t.Fatalf("stats %+v: partial rounds did not count as completed", st)
	}

	if err := r.Settle(); err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{addr1, addr2} {
		h, err := r.Client().Health(a)
		if err != nil {
			t.Fatal(err)
		}
		if h.ExpiredExecuted != 0 {
			t.Errorf("shard %s executed %d expired requests", a, h.ExpiredExecuted)
		}
	}

	want := referenceAudit(t, bundle, spec, ids, rounds)
	for _, ts := range r.TenantStates() {
		if ts.Ticks != rounds {
			t.Errorf("tenant %s: %d/%d ticks after settle", ts.ID, ts.Ticks, rounds)
		}
		b, err := os.ReadFile(filepath.Join(audit, fleet.SanitizeID(ts.ID)+".jsonl"))
		if err != nil {
			t.Fatalf("tenant %s: %v", ts.ID, err)
		}
		if !bytes.Equal(b, want[ts.ID]) {
			t.Errorf("tenant %s: audit log differs from reference across shed rounds + brownout (%d vs %d bytes)",
				ts.ID, len(b), len(want[ts.ID]))
		}
	}
}
