package graf

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// lcTrained trains one boutique model at the drift-experiment budget, shared
// by the lifecycle end-to-end tests (the 600-sample quickTrained model is too
// weak to hold trust on the pre-drift surface).
var lcTrainedModel *TrainedModel

func lcTrained(t *testing.T) *TrainedModel {
	t.Helper()
	if testing.Short() {
		t.Skip("lifecycle e2e needs a trained pipeline")
	}
	if lcTrainedModel == nil {
		lcTrainedModel = Train(OnlineBoutique(), TrainOptions{
			SLO: 250 * time.Millisecond, MinRate: 40, MaxRate: 420,
			Samples: 1100, Iterations: 360, Batch: 64, Seed: 1,
		})
	}
	return lcTrainedModel
}

// lcLoad ramps to 240 rps over the first minute, then swells ±60 rps with a
// two-minute period — a varying workload keeps the controller consulting the
// model, which is where a drifted model hurts.
func lcLoad(t float64) float64 {
	if t < 60 {
		return 240 * t / 60
	}
	return 240 + 60*math.Sin(2*math.Pi*(t-60)/120)
}

// driftUntil steps the simulation until the lifecycle reaches phase, or fails
// with the event log.
func driftUntil(t *testing.T, s *Simulation, lc *Lifecycle, phase LifecyclePhase, maxS int, events *[]string) {
	t.Helper()
	for i := 0; i < maxS/10; i++ {
		if lc.Phase() == phase {
			return
		}
		s.RunFor(10 * time.Second)
	}
	if lc.Phase() != phase {
		t.Fatalf("lifecycle never reached %v (still %v after %ds)\nevents: %v",
			phase, lc.Phase(), maxS, *events)
	}
}

// TestLifecycleReplayAcrossPromotion drives the public API through a full
// drift→trip→retrain→promote arc with the flight recorder on, then replays
// the audit log: every decision — some solved by generation 0, some by the
// promoted generation 1 — must reproduce bit-identically through the model
// archive the lifecycle carries.
func TestLifecycleReplayAcrossPromotion(t *testing.T) {
	tr := lcTrained(t)
	s := NewSimulation(OnlineBoutique(), 11)
	tel := s.EnableObservability(ObservabilityConfig{})

	ctl, err := s.StartGRAF(tr, 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	g := s.OpenLoop(lcLoad)
	g.Start()
	s.RunFor(180 * time.Second) // ramp + settle before arming the monitor

	var events []string
	lc := s.NewLifecycle(tr, LifecycleOptions{OnEvent: func(at time.Duration, kind, detail string) {
		events = append(events, fmt.Sprintf("t=%.0f %s: %s", at.Seconds(), kind, detail))
	}})
	lc.Attach(ctl)
	lc.Start()
	s.RunFor(60 * time.Second) // monitor warms up on the surface it trusts

	s.Chaos().Play(ChaosScenario{Name: "drift", Events: []ChaosEvent{
		ChaosSurfaceDrift(0, "", 1.6),
	}})
	driftUntil(t, s, lc, LifecycleDrifted, 200, &events)
	driftUntil(t, s, lc, LifecycleProbation, 400, &events)
	s.RunFor(60 * time.Second) // some decisions on the promoted generation
	g.Stop()
	ctl.Stop()
	lc.Stop()

	trips, promos, _, _, _, _ := lc.Stats()
	if trips < 1 || promos < 1 {
		t.Fatalf("want ≥1 trip and ≥1 promotion, got %d/%d\nevents: %v", trips, promos, events)
	}
	if lc.Generation() < 1 {
		t.Fatalf("incumbent still generation %d after a promotion", lc.Generation())
	}

	recs := tel.Flight.Records()
	sawPromoted := false
	for _, r := range recs {
		if r.Type == "decision" && r.ModelGen >= 1 {
			sawPromoted = true
			break
		}
	}
	if !sawPromoted {
		t.Error("no decision record carries the promoted model generation")
	}

	rep := ReplayAuditManaged(lc.Models(), recs)
	if !rep.OK() {
		t.Fatalf("replay across promotion not bit-identical: %v\n%v", rep, rep.Mismatches)
	}
	if rep.Solves == 0 {
		t.Fatal("replay re-solved nothing")
	}
	if rep.SkippedGen != 0 {
		t.Errorf("%d solves skipped: lifecycle archive is missing generations", rep.SkippedGen)
	}
}

// TestLifecycleSupervisedWarmRecoveryMidCanary checkpoints the control plane
// in the middle of a canary probation window, crashes it, and verifies the
// warm restart resumes the probation — same generation, no spurious rollback,
// and the candidate still earns full trust.
func TestLifecycleSupervisedWarmRecoveryMidCanary(t *testing.T) {
	tr := lcTrained(t)
	s := NewSimulation(OnlineBoutique(), 11)
	s.EnableObservability(ObservabilityConfig{})

	var events []string
	lc := s.NewLifecycle(tr, LifecycleOptions{OnEvent: func(at time.Duration, kind, detail string) {
		events = append(events, fmt.Sprintf("t=%.0f %s: %s", at.Seconds(), kind, detail))
	}})
	sup, err := s.StartGRAFSupervised(tr, DefaultControllerConfig(250*time.Millisecond), SupervisorOptions{
		Dir:       t.TempDir(),
		Lifecycle: lc,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := s.OpenLoop(lcLoad)
	g.Start()
	s.RunFor(240 * time.Second)

	s.Chaos().Play(ChaosScenario{Name: "drift", Events: []ChaosEvent{
		ChaosSurfaceDrift(0, "", 1.6),
	}})
	driftUntil(t, s, lc, LifecycleProbation, 600, &events)

	gen := lc.Generation()
	trips0, promos0, rolls0, _, _, _ := lc.Stats()
	if gen < 1 || promos0 < 1 {
		t.Fatalf("no promotion before the crash (gen %d, %d promotions)\nevents: %v", gen, promos0, events)
	}

	// Mid-canary snapshot, then an abrupt death with warm restart.
	if _, err := sup.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sup.Crash(5, true)
	s.RunFor(30 * time.Second)

	if mode := sup.LastRestoreMode(); mode != "warm" {
		t.Fatalf("restart restore mode %q, want warm", mode)
	}
	if got := lc.Generation(); got != gen {
		t.Errorf("generation %d after warm restart, want %d", got, gen)
	}
	if p := lc.Phase(); p != LifecycleProbation && p != LifecycleTrusted {
		t.Errorf("phase %v after warm restart, want probation (resumed) or trusted (completed)", p)
	}

	// The resumed probation window must run to completion, not roll back.
	driftUntil(t, s, lc, LifecycleTrusted, 400, &events)
	g.Stop()
	sup.Stop()
	lc.Stop()

	trips, promos, rolls, _, _, _ := lc.Stats()
	if rolls != rolls0 {
		t.Errorf("probation rolled back after the warm restart (rollbacks %d → %d)\nevents: %v", rolls0, rolls, events)
	}
	if trips < trips0 || promos < promos0 {
		t.Errorf("lifecycle counters went backwards across restart: trips %d→%d promotions %d→%d",
			trips0, trips, promos0, promos)
	}
	if lc.Generation() != gen {
		t.Errorf("final generation %d, want the promoted %d", lc.Generation(), gen)
	}
}
