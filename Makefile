GO ?= go

.PHONY: all build vet test test-race bench bench-json bench-json-fleetrpc bench-json-router bench-json-obs bench-json-overload bench-json-forecast obs-demo ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Reproduce the paper's evaluation tables (see EXPERIMENTS.md).
bench:
	$(GO) run ./cmd/grafbench -scale quick

# Machine-readable numbers for the fleet hot paths: scratch vs allocating
# inference, one full solve, and the multi-tenant fleet experiment. Emits
# BENCH_fleet.json for CI trend tracking.
bench-json:
	{ $(GO) test -run '^$$' -bench '^(BenchmarkPredict|BenchmarkPredictWith|BenchmarkPredictGrad|BenchmarkPredictGradWith)$$' -benchmem ./internal/gnn/ ; \
	  $(GO) test -run '^$$' -bench '^(BenchmarkSolver|BenchmarkFleet)$$' -benchtime 1x -benchmem . ; } | \
	  $(GO) run ./cmd/benchjson -o BENCH_fleet.json
	@echo wrote BENCH_fleet.json

# Multi-process control-plane numbers (DESIGN.md §3h): aggregate ticks/s
# through the router, migration blackout, shard-loss rebalance blackout and
# the zero-lost-decisions invariant, as benchjson extra metrics. CI holds
# migration-blackout-ms under a regression ceiling.
bench-json-fleetrpc:
	$(GO) test -run '^$$' -bench '^BenchmarkFleetRPC$$' -benchtime 1x . | \
	  $(GO) run ./cmd/benchjson -o BENCH_fleetrpc.json
	@echo wrote BENCH_fleetrpc.json

# Crash-safe router numbers (DESIGN.md §3k): standby takeover blackout after
# a SIGKILL mid-migration, with the zero-lost-decisions / zero-fenced-writes
# invariants enforced inside the benchmark, as benchjson extra metrics in
# BENCH_router.json. CI holds takeover-blackout-ms under a regression
# ceiling.
bench-json-router:
	$(GO) test -run '^$$' -bench '^BenchmarkRouterFailover$$' -benchtime 1x . | \
	  $(GO) run ./cmd/benchjson -o BENCH_router.json
	@echo wrote BENCH_router.json

# Fleet-wide observability numbers (DESIGN.md §3i): tracing overhead per
# tenant tick (CI holds overhead-pct under a regression ceiling; the traced
# run must stay byte-identical) and the multi-window SLO burn-rate detection
# times, as benchjson extra metrics in BENCH_obs.json.
bench-json-obs:
	$(GO) test -run '^$$' -bench '^(BenchmarkTraceOverhead|BenchmarkSLOBurn)$$' -benchtime 1x . | \
	  $(GO) run ./cmd/benchjson -o BENCH_obs.json
	@echo wrote BENCH_obs.json

# Overload-protection numbers (DESIGN.md §3j): the brownout ladder vs the
# never-degrade and always-heuristic fixed policies, as benchjson extra
# metrics in BENCH_overload.json. The benchmark fails outright if the ladder
# loses either ordering (deadline misses vs never-degrade, violation seconds
# vs always-heuristic) or records a non-monotone ladder walk.
bench-json-overload:
	$(GO) test -run '^$$' -bench '^BenchmarkOverload$$' -benchtime 1x . | \
	  $(GO) run ./cmd/benchjson -o BENCH_overload.json
	@echo wrote BENCH_overload.json

# Workload-forecasting numbers (DESIGN.md §3l): forecasted-quantile vs
# reactive provisioning on the diurnal cycle and the Azure trace, as
# benchjson extra metrics in BENCH_forecast.json. The benchmark fails
# outright unless forecasting buys strictly fewer SLO-violation seconds than
# reacting on both workloads.
bench-json-forecast:
	$(GO) test -run '^$$' -bench '^BenchmarkForecast$$' -benchtime 1x . | \
	  $(GO) run ./cmd/benchjson -o BENCH_forecast.json
	@echo wrote BENCH_forecast.json

# Observability smoke demo: train a quick model, run the controller with the
# telemetry endpoints up, self-scrape /metrics, then hold the endpoints for
# 10 s of manual curl time (see README "Observability").
obs-demo:
	$(GO) run ./cmd/grafd -train -dur 120 -obs 127.0.0.1:9090 -smoke -hold 10

ci: build vet test-race
