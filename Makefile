GO ?= go

.PHONY: all build vet test test-race bench ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Reproduce the paper's evaluation tables (see EXPERIMENTS.md).
bench:
	$(GO) run ./cmd/grafbench -scale quick

ci: build vet test-race
