package graf

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// quickTrain trains a small model once for the public-API tests.
var quickTrained *TrainedModel

func trained(t *testing.T) *TrainedModel {
	t.Helper()
	if quickTrained == nil {
		quickTrained = Train(OnlineBoutique(), TrainOptions{
			SLO: 250 * time.Millisecond, MinRate: 40, MaxRate: 320,
			Samples: 600, Iterations: 220, Batch: 64, Seed: 3,
		})
	}
	return quickTrained
}

func TestSimulationBasics(t *testing.T) {
	s := NewSimulation(OnlineBoutique(), 1)
	gen := s.OpenLoop(ConstRate(30))
	gen.Start()
	s.RunFor(60 * time.Second)
	gen.Stop()
	if s.Now() < 60*time.Second {
		t.Errorf("Now = %v, want ≥ 60s", s.Now())
	}
	if s.P99(30*time.Second) <= 0 {
		t.Error("no latency observed")
	}
}

func TestTrainAndSolve(t *testing.T) {
	tr := trained(t)
	load := DistributeWorkload(OnlineBoutique(), map[string]float64{"cart": 60, "product": 60, "home": 30})
	sol := Solve(tr, load, 250*time.Millisecond)
	if len(sol.Quotas) != 6 {
		t.Fatalf("solution has %d quotas", len(sol.Quotas))
	}
	if sol.Predicted > 0.250*1.05 {
		t.Errorf("solver violated SLO: predicted %.3fs", sol.Predicted)
	}
	for i, q := range sol.Quotas {
		if q < tr.Bounds.Lo[i]-1e-9 || q > tr.Bounds.Hi[i]+1e-9 {
			t.Errorf("quota %d = %v outside bounds", i, q)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := trained(t)
	path := filepath.Join(t.TempDir(), "model.graf")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	load := DistributeWorkload(OnlineBoutique(), map[string]float64{"cart": 50})
	quota := make([]float64, 6)
	for i := range quota {
		quota[i] = 800
	}
	if got.Model.Predict(load, quota) != tr.Model.Predict(load, quota) {
		t.Error("loaded model predicts differently")
	}
	if got.MaxRate != tr.MaxRate || got.SLO != tr.SLO {
		t.Error("metadata not preserved")
	}
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("loading a missing file should fail")
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(path); err == nil {
		t.Error("loading garbage should fail")
	}
}

func TestStartGRAFRejectsMismatchedModel(t *testing.T) {
	tr := trained(t) // trained for OnlineBoutique (6 services)
	s := NewSimulation(RobotShop(), 7)
	if _, err := s.StartGRAF(tr, 250*time.Millisecond); err == nil {
		t.Fatal("StartGRAF accepted a model trained for a different application")
	}
	if err := tr.ValidateFor(RobotShop()); err == nil {
		t.Error("ValidateFor accepted a 6-service model for a 2-service app")
	}
	if err := tr.ValidateFor(OnlineBoutique()); err != nil {
		t.Errorf("ValidateFor rejected the matching application: %v", err)
	}

	// Truncated bounds must be caught even when the service count matches.
	bad := *tr
	bad.Bounds = Bounds{Lo: tr.Bounds.Lo[:3], Hi: tr.Bounds.Hi[:3]}
	if err := bad.ValidateFor(OnlineBoutique()); err == nil {
		t.Error("ValidateFor accepted truncated bounds")
	}
}

func TestGRAFControllerEndToEnd(t *testing.T) {
	tr := trained(t)
	s := NewSimulation(OnlineBoutique(), 5)
	ctl, err := s.StartGRAF(tr, 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	gen := s.OpenLoop(ConstRate(120))
	gen.Start()
	s.RunFor(4 * time.Minute)
	gen.Stop()
	ctl.Stop()
	s.RunFor(time.Minute)
	if ctl.Solves() == 0 {
		t.Fatal("controller never solved")
	}
	p99 := s.P99(90 * time.Second)
	if p99 <= 0 {
		t.Fatal("no tail latency measured")
	}
	// Generous 2× band: quick-budget model on a stochastic system.
	if p99 > 500*time.Millisecond {
		t.Errorf("p99 %v far above the 250ms SLO", p99)
	}
}

func TestBaselinesViaPublicAPI(t *testing.T) {
	s := NewSimulation(OnlineBoutique(), 6)
	h := s.StartHPA(0.5)
	gen := s.OpenLoop(ConstRate(120))
	gen.Start()
	s.RunFor(3 * time.Minute)
	gen.Stop()
	h.Stop()
	if s.Cluster.TotalInstances() <= 6 {
		t.Error("HPA did not scale via public API")
	}

	s2 := NewSimulation(OnlineBoutique(), 7)
	f := s2.StartFIRM()
	gen2 := s2.OpenLoop(ConstRate(200))
	gen2.Start()
	s2.RunFor(3 * time.Minute)
	gen2.Stop()
	f.Stop()
	if s2.Cluster.TotalQuota() <= 6*250 {
		t.Error("FIRM-like did not scale via public API")
	}
}

func TestBuiltinAppsExported(t *testing.T) {
	for _, a := range []*App{OnlineBoutique(), SocialNetwork(), RobotShop(), Bookinfo()} {
		if len(a.Services) == 0 {
			t.Errorf("%s has no services", a.Name)
		}
	}
}

func TestStepRateHelper(t *testing.T) {
	r := StepRate(10, 100, 30*time.Second)
	if r(29) != 10 || r(31) != 100 {
		t.Error("StepRate switch point wrong")
	}
}

func TestChaosViaPublicAPI(t *testing.T) {
	s := NewSimulation(OnlineBoutique(), 21)
	for _, svc := range OnlineBoutique().ServiceNames() {
		s.Cluster.Deployment(svc).SetReplicas(3)
	}
	gen := s.OpenLoop(ConstRate(40))
	gen.Start()
	s.RunFor(60 * time.Second)

	inj := s.Chaos()
	if inj != s.Chaos() {
		t.Fatal("Chaos() must memoize the injector")
	}
	inj.Play(ChaosScenario{Name: "pub", Events: []ChaosEvent{
		ChaosKill(1*time.Second, "cart", 1),
		ChaosCrashFraction(5*time.Second, 0.3),
		ChaosTelemetryBlackhole(10*time.Second, 10*time.Second),
		ChaosArrivalSampling(12*time.Second, 0.5, 5*time.Second),
		ChaosTraceDrop(12*time.Second, 0.5, 5*time.Second),
		ChaosContention(15*time.Second, "currency", 2.0, 5*time.Second),
	}})
	s.RunFor(60 * time.Second)
	gen.Stop()
	s.Engine.Run()

	if got := len(inj.Log()); got != 6 {
		t.Fatalf("injector fired %d events, want 6", got)
	}
	if s.Cluster.KilledTotal() == 0 {
		t.Error("no instances were killed")
	}
	if s.Cluster.InFlight() != 0 {
		t.Errorf("%d requests stranded after drain", s.Cluster.InFlight())
	}
}
