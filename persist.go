package graf

import (
	"bytes"
	"encoding/gob"
	"time"
)

// persistedTrained is the on-disk form of a TrainedModel.
type persistedTrained struct {
	ModelBlob []byte
	Lo, Hi    []float64
	MinRate   float64
	MaxRate   float64
	SLO       time.Duration
}

func encodeTrained(t *TrainedModel) ([]byte, error) {
	mb, err := t.Model.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(persistedTrained{
		ModelBlob: mb, Lo: t.Bounds.Lo, Hi: t.Bounds.Hi,
		MinRate: t.MinRate, MaxRate: t.MaxRate, SLO: t.SLO,
	})
	return buf.Bytes(), err
}

func decodeTrained(blob []byte) (*TrainedModel, error) {
	var p persistedTrained
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&p); err != nil {
		return nil, err
	}
	var m Model
	if err := m.UnmarshalBinary(p.ModelBlob); err != nil {
		return nil, err
	}
	return &TrainedModel{
		Model: &m, Bounds: Bounds{Lo: p.Lo, Hi: p.Hi},
		MinRate: p.MinRate, MaxRate: p.MaxRate, SLO: p.SLO,
	}, nil
}
