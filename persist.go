package graf

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"graf/internal/ckpt"
)

// modelFileVersion is the current model-file payload schema version.
const modelFileVersion uint32 = 1

// persistedTrained is the on-disk form of a TrainedModel. Samples rides
// along (gob tolerates its absence in files written before it existed) so a
// loaded model can feed lifecycle retraining its own training set.
type persistedTrained struct {
	ModelBlob []byte
	Lo, Hi    []float64
	MinRate   float64
	MaxRate   float64
	SLO       time.Duration
	Samples   []Sample
}

// encodeTrained serializes a trained model into its framed on-disk form:
// the gob payload wrapped in ckpt's magic/version/CRC32 envelope, so a
// truncated or bit-flipped file is rejected at load instead of reaching the
// controller as silently wrong weights.
func encodeTrained(t *TrainedModel) ([]byte, error) {
	mb, err := t.Model.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(persistedTrained{
		ModelBlob: mb, Lo: t.Bounds.Lo, Hi: t.Bounds.Hi,
		MinRate: t.MinRate, MaxRate: t.MaxRate, SLO: t.SLO,
		Samples: t.Samples,
	})
	if err != nil {
		return nil, err
	}
	return ckpt.Frame(ckpt.ModelMagic, modelFileVersion, buf.Bytes()), nil
}

func decodeTrained(blob []byte) (*TrainedModel, error) {
	payload, err := ckpt.Unframe(ckpt.ModelMagic, modelFileVersion, blob)
	if err != nil {
		return nil, fmt.Errorf("graf: model file: %w", err)
	}
	var p persistedTrained
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("graf: model file: checksum-valid but undecodable payload (schema mismatch): %w", err)
	}
	var m Model
	if err := m.UnmarshalBinary(p.ModelBlob); err != nil {
		return nil, err
	}
	// Internal consistency: a file that decodes but disagrees with itself
	// (truncated bounds, corrupt header) must not reach the controller.
	if m.Cfg.Nodes <= 0 {
		return nil, fmt.Errorf("graf: persisted model has %d nodes", m.Cfg.Nodes)
	}
	if len(p.Lo) != m.Cfg.Nodes || len(p.Hi) != m.Cfg.Nodes {
		return nil, fmt.Errorf("graf: persisted bounds cover %d/%d services, model has %d nodes",
			len(p.Lo), len(p.Hi), m.Cfg.Nodes)
	}
	for i := range p.Lo {
		if p.Lo[i] > p.Hi[i] {
			return nil, fmt.Errorf("graf: persisted bounds inverted at service %d: lo %v > hi %v", i, p.Lo[i], p.Hi[i])
		}
	}
	if p.MinRate > p.MaxRate {
		return nil, fmt.Errorf("graf: persisted rate range inverted: min %v > max %v", p.MinRate, p.MaxRate)
	}
	return &TrainedModel{
		Model: &m, Bounds: Bounds{Lo: p.Lo, Hi: p.Hi},
		MinRate: p.MinRate, MaxRate: p.MaxRate, SLO: p.SLO,
		Samples: p.Samples,
	}, nil
}
