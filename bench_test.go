// Benchmarks regenerating every table and figure of the paper (one target
// per experiment — DESIGN.md §3), plus microbenchmarks of the hot paths.
//
// Each experiment benchmark runs the same harness cmd/grafbench uses and
// prints the reproduced table once. The scale defaults to "quick" so the
// full suite stays in CI-friendly time; set GRAF_BENCH_SCALE=standard (or
// full) to spend more compute.
package graf_test

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"graf/internal/app"
	"graf/internal/bench"
	"graf/internal/cluster"
	"graf/internal/core"
	"graf/internal/gnn"
	"graf/internal/obs"
	"graf/internal/sim"
	"graf/internal/workload"
)

func benchScale() bench.Scale {
	switch os.Getenv("GRAF_BENCH_SCALE") {
	case "standard":
		return bench.Standard()
	case "full":
		return bench.Full()
	default:
		return bench.Quick()
	}
}

var printedMu sync.Mutex
var printed = map[string]bool{}

// runExperiment executes one harness runner per benchmark iteration and
// prints its table the first time.
func runExperiment(b *testing.B, fn func(bench.Scale) bench.Result) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res := fn(benchScale())
		printedMu.Lock()
		if !printed[res.ID] {
			printed[res.ID] = true
			fmt.Println(res.Format())
		}
		printedMu.Unlock()
	}
}

// --- One benchmark per paper table/figure ---------------------------------

func BenchmarkFig01InstanceCreation(b *testing.B) { runExperiment(b, bench.Fig01InstanceCreation) }
func BenchmarkFig02SurgeInstances(b *testing.B)   { runExperiment(b, bench.Fig02SurgeInstances) }
func BenchmarkFig03SurgeLatency(b *testing.B)     { runExperiment(b, bench.Fig03SurgeLatency) }
func BenchmarkFig06LatencyCurves(b *testing.B)    { runExperiment(b, bench.Fig06LatencyCurves) }
func BenchmarkFig07CascadingEffect(b *testing.B)  { runExperiment(b, bench.Fig07CascadingEffect) }
func BenchmarkTab01Hyperparameters(b *testing.B)  { runExperiment(b, bench.Tab01Hyperparameters) }
func BenchmarkTab02PredictionError(b *testing.B)  { runExperiment(b, bench.Tab02PredictionError) }
func BenchmarkFig11MPNNAblation(b *testing.B)     { runExperiment(b, bench.Fig11MPNNAblation) }
func BenchmarkFig12LossHeatmap(b *testing.B)      { runExperiment(b, bench.Fig12LossHeatmap) }
func BenchmarkFig13SearchSpace(b *testing.B)      { runExperiment(b, bench.Fig13SearchSpace) }
func BenchmarkFig14TotalCPU(b *testing.B)         { runExperiment(b, bench.Fig14TotalCPU) }
func BenchmarkFig15PerMSBoutique(b *testing.B)    { runExperiment(b, bench.Fig15PerMSBoutique) }
func BenchmarkFig16PerMSSocial(b *testing.B)      { runExperiment(b, bench.Fig16PerMSSocial) }
func BenchmarkFig17SLOTargeting(b *testing.B)     { runExperiment(b, bench.Fig17SLOTargeting) }
func BenchmarkFig18UserScaling(b *testing.B)      { runExperiment(b, bench.Fig18UserScaling) }
func BenchmarkFig19CostBenefit(b *testing.B)      { runExperiment(b, bench.Fig19CostBenefit) }
func BenchmarkTab03Budget(b *testing.B)           { runExperiment(b, bench.Tab03Budget) }
func BenchmarkFig20AzureReplay(b *testing.B)      { runExperiment(b, bench.Fig20AzureReplay) }
func BenchmarkFig21SurgeComparison(b *testing.B)  { runExperiment(b, bench.Fig21SurgeComparison) }
func BenchmarkFig22Convergence(b *testing.B)      { runExperiment(b, bench.Fig22Convergence) }

// --- Ablation benchmarks (DESIGN.md §4) ------------------------------------

func BenchmarkAblationLoss(b *testing.B)    { runExperiment(b, bench.AblationLoss) }
func BenchmarkAblationSteps(b *testing.B)   { runExperiment(b, bench.AblationSteps) }
func BenchmarkAblationSolver(b *testing.B)  { runExperiment(b, bench.AblationSolver) }
func BenchmarkAblationSampler(b *testing.B) { runExperiment(b, bench.AblationSampler) }

// --- Microbenchmarks of the hot paths ---------------------------------------

// BenchmarkGNNPredict measures one forward pass of the paper-sized MPNN on
// the 6-node Online Boutique graph.
func BenchmarkGNNPredict(b *testing.B) {
	a := app.OnlineBoutique()
	m := gnn.New(gnn.DefaultConfig(len(a.Services), a.Parents()), rand.New(rand.NewSource(1)))
	load := []float64{100, 40, 140, 120, 80, 40}
	quota := []float64{800, 400, 500, 600, 900, 700}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(load, quota)
	}
}

// BenchmarkGNNPredictGrad measures forward + input-gradient backward, the
// unit of work inside the configuration solver's loop.
func BenchmarkGNNPredictGrad(b *testing.B) {
	a := app.OnlineBoutique()
	m := gnn.New(gnn.DefaultConfig(len(a.Services), a.Parents()), rand.New(rand.NewSource(1)))
	load := []float64{100, 40, 140, 120, 80, 40}
	quota := []float64{800, 400, 500, 600, 900, 700}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictGrad(load, quota)
	}
}

// BenchmarkSolver measures one full Eq.5 gradient descent (§3.5; the paper
// reports 3.4-6.8 s on their hardware for this step).
func BenchmarkSolver(b *testing.B) {
	a := app.OnlineBoutique()
	m := gnn.New(gnn.DefaultConfig(len(a.Services), a.Parents()), rand.New(rand.NewSource(1)))
	load := []float64{100, 40, 140, 120, 80, 40}
	lo := []float64{100, 100, 100, 100, 100, 100}
	hi := []float64{2000, 2000, 2000, 2000, 2000, 2000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Solve(m, load, 0.2, lo, hi, core.DefaultSolverConfig())
	}
}

// BenchmarkTrainingIteration measures one minibatch training step at the
// paper's batch size.
func BenchmarkTrainingIteration(b *testing.B) {
	a := app.OnlineBoutique()
	m := gnn.New(gnn.DefaultConfig(len(a.Services), a.Parents()), rand.New(rand.NewSource(1)))
	samples := make([]gnn.Sample, 64)
	rng := rand.New(rand.NewSource(2))
	for i := range samples {
		load := make([]float64, 6)
		quota := make([]float64, 6)
		for j := range load {
			load[j] = rng.Float64() * 200
			quota[j] = 100 + rng.Float64()*1900
		}
		samples[i] = gnn.Sample{Load: load, Quota: quota, Latency: 0.05 + rng.Float64()*0.3}
	}
	tc := gnn.DefaultTrainConfig()
	tc.Iterations = 1
	tc.Batch = 256
	tc.ValFrac, tc.TestFrac = 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Train(samples, tc)
	}
}

// BenchmarkClusterSimulation measures discrete-event throughput: simulated
// request-seconds per wall second on Online Boutique at 100 rps.
func BenchmarkClusterSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(int64(i))
		cl := cluster.New(eng, app.OnlineBoutique(), cluster.DefaultConfig())
		cl.ApplyQuotas(map[string]float64{
			"frontend": 1000, "cart": 500, "currency": 750,
			"productcatalog": 1000, "recommendation": 1250, "shipping": 750,
		})
		eng.RunUntil(30)
		g := workload.NewOpenLoop(cl, workload.ConstRate(100))
		g.Start()
		eng.RunUntil(90)
		g.Stop()
		eng.Run()
	}
}

// BenchmarkControllerObsOverhead measures the cost the telemetry subsystem
// adds to one full controller decision (collect→analyze→solve→actuate).
// Disabled is the nil-hook path (one nil check per instrumentation point);
// Enabled records metrics, spans, and audit records to a memory-capped
// flight recorder. The acceptance budget is Enabled ≤ Disabled + 5%.
func BenchmarkControllerObsOverhead(b *testing.B) {
	run := func(b *testing.B, enabled bool) {
		a := app.OnlineBoutique()
		eng := sim.NewEngine(11)
		cl := cluster.New(eng, a, cluster.DefaultConfig())
		cl.ApplyQuotas(map[string]float64{
			"frontend": 1000, "cart": 500, "currency": 750,
			"productcatalog": 1000, "recommendation": 1250, "shipping": 750,
		})
		m := gnn.New(gnn.DefaultConfig(len(a.Services), a.Parents()), rand.New(rand.NewSource(1)))
		bounds := core.Bounds{
			Lo: []float64{100, 100, 100, 100, 100, 100},
			Hi: []float64{6000, 6000, 6000, 6000, 6000, 6000},
		}
		cfg := core.DefaultControllerConfig(0.250)
		// Defeat hysteresis so every Step takes the full decision path —
		// the path the overhead budget is about.
		cfg.Hysteresis = 0
		ctl := core.NewController(cl, m, core.NewAnalyzer(a), bounds, cfg)
		if enabled {
			tel := obs.New(obs.Options{AuditMemory: 256})
			cl.Obs = obs.NewClusterObs(tel)
			ctl.Obs = obs.NewControllerObs(tel)
		}
		g := workload.NewOpenLoop(cl, workload.ConstRate(150))
		g.Start()
		eng.RunUntil(eng.Now() + 60) // build telemetry windows
		ctl.Step()                   // warm caches and first-registration costs
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.Step()
		}
	}
	b.Run("Disabled", func(b *testing.B) { run(b, false) })
	b.Run("Enabled", func(b *testing.B) { run(b, true) })
}

// BenchmarkAlgorithm1 measures Algorithm 1's search-space reduction with
// the analytic measurer.
func BenchmarkAlgorithm1(b *testing.B) {
	a := app.OnlineBoutique()
	for i := 0; i < b.N; i++ {
		m := core.NewAnalyticMeasurer(a, 0, int64(i))
		sc := core.NewSampleCollector(a, m, 0.25, 240)
		sc.ReduceSearchSpace()
	}
}

// --- Extension benchmarks (§6 future-work directions) -----------------------

func BenchmarkAblationInteger(b *testing.B)   { runExperiment(b, bench.AblationInteger) }
func BenchmarkAblationAnomaly(b *testing.B)   { runExperiment(b, bench.AblationAnomaly) }
func BenchmarkScalability(b *testing.B)       { runExperiment(b, bench.Scalability) }
func BenchmarkAblationPartition(b *testing.B) { runExperiment(b, bench.AblationPartition) }

// --- Robustness benchmark (chaos injection, DESIGN.md §3c) ------------------

func BenchmarkChaosRobustness(b *testing.B) { runExperiment(b, bench.ChaosRobustness) }

// --- Observability experiments (flight recorder, DESIGN.md §3d) -------------

func BenchmarkObsReplay(b *testing.B)   { runExperiment(b, bench.ObsReplay) }
func BenchmarkObsOverhead(b *testing.B) { runExperiment(b, bench.ObsOverhead) }

// --- Crash recovery (checkpoint + supervised warm restart, DESIGN.md §3e) ---

func BenchmarkRecovery(b *testing.B) { runExperiment(b, bench.Recovery) }

// --- Fleet control plane (sharded multi-tenant, DESIGN.md §3g) --------------

func BenchmarkFleet(b *testing.B) { runExperiment(b, bench.Fleet) }

// --- Multi-process fleet (HTTP control plane, DESIGN.md §3h) ----------------

// BenchmarkFleetRPC reports the control-plane numbers as benchmark metrics
// so the benchjson pipeline can track them in BENCH_fleetrpc.json — the
// migration-blackout metric carries a CI regression ceiling.
func BenchmarkFleetRPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, st := bench.FleetRPCRun(benchScale())
		printedMu.Lock()
		if !printed[res.ID] {
			printed[res.ID] = true
			fmt.Println(res.Format())
		}
		printedMu.Unlock()
		if !st.ByteIdentical || st.LostDecisions > 0 {
			b.Fatalf("fleet-rpc lost decisions (byteIdentical=%v lost=%v)", st.ByteIdentical, st.LostDecisions)
		}
		b.ReportMetric(st.TicksPerS, "ticks/s")
		b.ReportMetric(st.MigrationBlackoutMS, "migration-blackout-ms")
		b.ReportMetric(st.RebalanceBlackoutMS, "rebalance-blackout-ms")
		b.ReportMetric(st.LostDecisions, "lost-decisions")
	}
}

// --- Crash-safe router (durable placement + epoch fencing, DESIGN.md §3k) ---

// BenchmarkRouterFailover reports the router-failover drill as benchjson
// metrics for BENCH_router.json — the takeover-blackout metric carries a CI
// regression ceiling — and fails outright on any integrity breach: a lost
// decision, a stale-epoch mutation accepted by a shard, a migration record
// not rolled forward, or a post-takeover audit that is not byte-identical
// to the uninterrupted reference.
func BenchmarkRouterFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, st := bench.RouterFailoverRun(benchScale())
		printedMu.Lock()
		if !printed[res.ID] {
			printed[res.ID] = true
			fmt.Println(res.Format())
		}
		printedMu.Unlock()
		if !st.ByteIdentical || st.LostDecisions > 0 {
			b.Fatalf("router-failover lost decisions (byteIdentical=%v lost=%v)", st.ByteIdentical, st.LostDecisions)
		}
		if st.FencedAccepted > 0 {
			b.Fatalf("router-failover accepted %v stale-epoch mutations (must be 0)", st.FencedAccepted)
		}
		if st.MigrationAction != "rolled-forward" {
			b.Fatalf("mid-flight migration resolved as %q, want rolled-forward", st.MigrationAction)
		}
		b.ReportMetric(st.TakeoverBlackoutMS, "takeover-blackout-ms")
		b.ReportMetric(st.LostDecisions, "lost-decisions")
		b.ReportMetric(st.FencedAccepted, "fenced-accepted")
		b.ReportMetric(st.FencedRejected, "fenced-rejected")
	}
}

// --- Overload protection (brownout ladder, DESIGN.md §3j) -------------------

// BenchmarkOverload reports the overload-policy comparison as benchjson
// metrics for BENCH_overload.json, and fails outright if the ladder loses
// either ordering (fewer deadline misses than never-degrade, fewer
// violation seconds than always-heuristic) or walks the ladder
// non-monotonically — the regression contract of the brownout subsystem.
func BenchmarkOverload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, st := bench.OverloadRun(benchScale())
		printedMu.Lock()
		if !printed[res.ID] {
			printed[res.ID] = true
			fmt.Println(res.Format())
		}
		printedMu.Unlock()
		if !st.LadderBeatsNever {
			b.Fatalf("ladder deadline misses %.0f not below never-degrade %.0f", st.MissesLadder, st.MissesNever)
		}
		if !st.LadderBeatsHeuristic {
			b.Fatalf("ladder violation seconds %.0f not below always-heuristic %.0f", st.ViolSLadder, st.ViolSHeuristic)
		}
		if !st.Monotone {
			b.Fatal("governed run recorded a non-monotone ladder walk")
		}
		b.ReportMetric(st.MissesNever, "misses-never")
		b.ReportMetric(st.MissesLadder, "misses-ladder")
		b.ReportMetric(st.MissesHeuristic, "misses-heuristic")
		b.ReportMetric(st.ViolSNever, "viol-s-never")
		b.ReportMetric(st.ViolSLadder, "viol-s-ladder")
		b.ReportMetric(st.ViolSHeuristic, "viol-s-heuristic")
		b.ReportMetric(st.LadderTransitions, "ladder-transitions")
	}
}

// --- Fleet-wide observability (tracing + SLO budgets, DESIGN.md §3i) --------

// BenchmarkTraceOverhead reports what distributed tracing costs one tenant
// tick on the fleet's hot path, as benchjson metrics for BENCH_obs.json —
// the overhead-pct metric carries a CI regression ceiling, and a traced run
// that moves audit bytes fails outright.
func BenchmarkTraceOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, st := bench.TraceOverheadRun(benchScale())
		printedMu.Lock()
		if !printed[res.ID] {
			printed[res.ID] = true
			fmt.Println(res.Format())
		}
		printedMu.Unlock()
		if !st.ByteIdentical {
			b.Fatal("trace-overhead: tracing changed the audit stream")
		}
		b.ReportMetric(st.OverheadPct, "overhead-pct")
		b.ReportMetric(st.DisabledNSPerTick, "ns/tick-disabled")
		b.ReportMetric(st.EnabledNSPerTick, "ns/tick-enabled")
		b.ReportMetric(st.Spans, "spans")
	}
}

// --- Workload forecasting (proactive provisioning, DESIGN.md §3l) -----------

// BenchmarkForecast reports the forecasted-vs-reactive study as benchjson
// metrics for BENCH_forecast.json, and fails outright if forecasting does
// not buy strictly fewer SLO-violation seconds than reacting to the observed
// rate on BOTH workloads — the diurnal cycle and the Azure trace. That
// ordering is the subsystem's reason to exist: capacity ordered at the
// forecast horizon lands before the climb, not after it.
func BenchmarkForecast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, st := bench.ForecastRun(benchScale())
		printedMu.Lock()
		if !printed[res.ID] {
			printed[res.ID] = true
			fmt.Println(res.Format())
		}
		printedMu.Unlock()
		if st.DiurnalForecastViolS >= st.DiurnalReactiveViolS {
			b.Fatalf("diurnal: forecasted violation seconds %.0f not below reactive %.0f",
				st.DiurnalForecastViolS, st.DiurnalReactiveViolS)
		}
		if st.AzureForecastViolS >= st.AzureReactiveViolS {
			b.Fatalf("azure: forecasted violation seconds %.0f not below reactive %.0f",
				st.AzureForecastViolS, st.AzureReactiveViolS)
		}
		b.ReportMetric(st.DiurnalForecastViolS, "viol-s-forecast-diurnal")
		b.ReportMetric(st.DiurnalReactiveViolS, "viol-s-reactive-diurnal")
		b.ReportMetric(st.DiurnalForecastCoreH, "core-h-forecast-diurnal")
		b.ReportMetric(st.DiurnalReactiveCoreH, "core-h-reactive-diurnal")
		b.ReportMetric(st.AzureForecastViolS, "viol-s-forecast-azure")
		b.ReportMetric(st.AzureReactiveViolS, "viol-s-reactive-azure")
		b.ReportMetric(st.AzureForecastCoreH, "core-h-forecast-azure")
		b.ReportMetric(st.AzureReactiveCoreH, "core-h-reactive-azure")
	}
}

// BenchmarkSLOBurn reports the multi-window burn-rate detection times; the
// fast window firing before the slow one is the alerting contract.
func BenchmarkSLOBurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, st := bench.SLOBurnRun(benchScale())
		printedMu.Lock()
		if !printed[res.ID] {
			printed[res.ID] = true
			fmt.Println(res.Format())
		}
		printedMu.Unlock()
		if !st.Ordered || !st.Rearmed {
			b.Fatalf("slo-burn contract broken (ordered=%v rearmed=%v)", st.Ordered, st.Rearmed)
		}
		b.ReportMetric(st.FastAtS, "fast-at-s")
		b.ReportMetric(st.SlowAtS, "slow-at-s")
		b.ReportMetric(st.LeadS, "lead-s")
	}
}
