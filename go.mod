module graf

go 1.22
