// Package graf is a Go implementation of GRAF, the graph-neural-network
// based proactive resource allocation framework for SLO-oriented
// microservices (Park, Choi, Lee, Han — CoNEXT 2021), together with every
// substrate it needs to run end to end: a discrete-event microservice
// cluster simulator with Kubernetes-style orchestration, distributed
// tracing, load generation, the baseline autoscalers the paper compares
// against, and a benchmark harness reproducing the paper's evaluation.
//
// # Quick start
//
// Build a simulated deployment of an application, train a latency
// prediction model offline, and let the GRAF controller hold the tail
// latency SLO with minimal CPU:
//
//	sim := graf.NewSimulation(graf.OnlineBoutique(), 1)
//	trained := graf.Train(graf.OnlineBoutique(), graf.TrainOptions{
//		SLO: 200 * time.Millisecond, MinRate: 40, MaxRate: 320,
//	})
//	ctl, err := sim.StartGRAF(trained, 200*time.Millisecond)
//	gen := sim.OpenLoop(graf.ConstRate(150))
//	gen.Start()
//	sim.RunFor(10 * time.Minute)
//	fmt.Println(sim.P99(30*time.Second), sim.Cluster.TotalQuota())
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package graf

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"graf/internal/app"
	"graf/internal/autoscale"
	"graf/internal/chaos"
	"graf/internal/ckpt"
	"graf/internal/cluster"
	"graf/internal/core"
	"graf/internal/fleet"
	"graf/internal/forecast"
	"graf/internal/gnn"
	"graf/internal/lifecycle"
	"graf/internal/obs"
	"graf/internal/rpc"
	"graf/internal/sim"
	"graf/internal/workload"
)

// Re-exported building blocks. These aliases are the public names for the
// framework's core types; their methods are documented in the internal
// packages they alias.
type (
	// App describes a microservice application: its service graph, API
	// call trees, and per-service CPU-work parameters.
	App = app.App
	// Service is one microservice's resource/latency characteristics.
	Service = app.Service
	// API is one request type exposed by an application's frontend.
	API = app.API
	// Call is a node in an API's call tree.
	Call = app.Call
	// Cluster is the simulated orchestration substrate an App runs on.
	Cluster = cluster.Cluster
	// Deployment is one microservice's replica set within a Cluster.
	Deployment = cluster.Deployment
	// Model is the GNN latency prediction model (§3.4 of the paper).
	Model = gnn.Model
	// Sample is one (workload, resources, latency) training triple.
	Sample = gnn.Sample
	// Controller is GRAF's runtime control loop (§3.6/§3.8).
	Controller = core.Controller
	// ControllerConfig parameterizes the control loop, including the
	// graceful-degradation guardrails.
	ControllerConfig = core.ControllerConfig
	// HealthState is the controller's degraded-mode state.
	HealthState = core.HealthState
	// HealthStats counts the controller's degraded-mode activity.
	HealthStats = core.HealthStats
	// Bounds is Algorithm 1's reduced per-service search space.
	Bounds = core.Bounds
	// Solution is the configuration solver's output (§3.5).
	Solution = core.Solution
	// ForecastConfig parameterizes the workload forecasting subsystem
	// (ControllerConfig.Forecast): model choice, horizon, and the
	// risk-adjusted quantile the solver plans against.
	ForecastConfig = forecast.Config
	// ForecastPredictor is the composed forecaster: a seasonal or
	// autoregressive model behind Hampel sanitization, residual tracking,
	// and a blowout detector that degrades the loop back to reactive.
	ForecastPredictor = forecast.Predictor
	// HPA is the Kubernetes horizontal-pod-autoscaler baseline.
	HPA = autoscale.HPA
	// FIRMLike is the FIRM-style latency-ratio baseline.
	FIRMLike = autoscale.FIRMLike
	// OpenLoop is a Vegeta-like constant/shaped-rate load generator.
	OpenLoop = workload.OpenLoop
	// ClosedLoop is a Locust-like user-thread load generator.
	ClosedLoop = workload.ClosedLoop
	// DiurnalConfig parameterizes the seeded diurnal-seasonality workload.
	DiurnalConfig = workload.DiurnalConfig
	// SurgeRampConfig parameterizes the seeded single-surge workload.
	SurgeRampConfig = workload.SurgeRampConfig
)

// Builtin applications from the paper's evaluation.
func OnlineBoutique() *App { return app.OnlineBoutique() }

// SocialNetwork returns the DeathStarBench Social Network application.
func SocialNetwork() *App { return app.SocialNetwork() }

// RobotShop returns the two-service Robot Shop slice used in Fig 6.
func RobotShop() *App { return app.RobotShop() }

// Bookinfo returns Istio's Bookinfo application (Fig 5).
func Bookinfo() *App { return app.Bookinfo() }

// AppByName resolves a builtin application by its portable name
// ("online-boutique", "social-network", "robot-shop", "bookinfo", or
// "chain-N" for a synthetic N-service chain) — the same names the
// multi-process control plane ships in its fleet spec, so a CLI flag and a
// router spec always resolve to the identical graph.
func AppByName(name string) (*App, error) { return app.ByName(name) }

// Controller health states (see Controller.Health).
const (
	Healthy           = core.Healthy
	DegradedTelemetry = core.DegradedTelemetry
	FallbackHeuristic = core.FallbackHeuristic
	Boosting          = core.Boosting
)

// DefaultControllerConfig returns the hardened default control-loop
// settings for the given SLO.
func DefaultControllerConfig(slo time.Duration) ControllerConfig {
	return core.DefaultControllerConfig(slo.Seconds())
}

// VanillaControllerConfig returns the control loop exactly as the paper
// describes it, with every graceful-degradation guardrail disabled.
func VanillaControllerConfig(slo time.Duration) ControllerConfig {
	return core.VanillaControllerConfig(slo.Seconds())
}

// ConstRate returns a fixed open-loop rate shape.
func ConstRate(rps float64) func(float64) float64 { return workload.ConstRate(rps) }

// StepRate returns a base→surge open-loop rate shape switching at the given
// simulated time.
func StepRate(base, surge float64, at time.Duration) func(float64) float64 {
	return workload.StepRate(base, surge, at.Seconds())
}

// DiurnalRate returns an open-loop rate shape following a seeded sinusoidal
// day/night cycle with persistent noise — the seasonal workload the
// forecasting subsystem proves itself on. One sample per second.
func DiurnalRate(cfg DiurnalConfig) func(float64) float64 {
	return workload.SeriesRate(workload.Diurnal(cfg), 1)
}

// SurgeRampRate returns DiurnalRate's single-surge sibling: flat baseline,
// linear climb, hold, descent.
func SurgeRampRate(cfg SurgeRampConfig) func(float64) float64 {
	return workload.SeriesRate(workload.SurgeRamp(cfg), 1)
}

// ConstUsers returns a fixed closed-loop user count.
func ConstUsers(n int) func(float64) int { return workload.ConstUsers(n) }

// Chaos-injection building blocks (see internal/chaos and DESIGN.md).
type (
	// ChaosInjector schedules scripted fault scenarios against a cluster.
	ChaosInjector = chaos.Injector
	// ChaosScenario is a named, ordered fault schedule.
	ChaosScenario = chaos.Scenario
	// ChaosEvent is one scheduled fault.
	ChaosEvent = chaos.Event
)

// ChaosKill kills n ready instances of svc at the given offset.
func ChaosKill(at time.Duration, svc string, n int) ChaosEvent {
	return chaos.Kill(at.Seconds(), svc, n)
}

// ChaosCrashFraction crashes the given fraction of every deployment's
// instances at the given offset (a correlated failure).
func ChaosCrashFraction(at time.Duration, fraction float64) ChaosEvent {
	return chaos.Crash(at.Seconds(), fraction)
}

// ChaosTelemetryBlackhole suppresses the frontend arrival telemetry for the
// window — requests still flow, but the controller's rate windows go dark.
func ChaosTelemetryBlackhole(at, duration time.Duration) ChaosEvent {
	return chaos.BlackholeFrontend(at.Seconds(), duration.Seconds())
}

// ChaosArrivalSampling records only the given fraction of arrivals in
// telemetry for the window (a lossy metrics pipeline).
func ChaosArrivalSampling(at time.Duration, keep float64, duration time.Duration) ChaosEvent {
	return chaos.SampleArrivals(at.Seconds(), keep, duration.Seconds())
}

// ChaosTraceDrop discards the given fraction of completed traces for the
// window, starving the Workload Analyzer.
func ChaosTraceDrop(at time.Duration, p float64, duration time.Duration) ChaosEvent {
	return chaos.DropTraces(at.Seconds(), p, duration.Seconds())
}

// ChaosContention multiplies svc's service times by factor for the window
// (a noisy neighbor).
func ChaosContention(at time.Duration, svc string, factor float64, duration time.Duration) ChaosEvent {
	return chaos.Contend(at.Seconds(), svc, factor, duration.Seconds())
}

// ChaosSurfaceDrift permanently multiplies the per-request CPU work of svc
// ("" = every service) by factor at the given offset — a code regression or
// dependency upgrade that invalidates the latency surface the model was
// trained on. Unlike ChaosContention it never expires: only retraining (see
// NewLifecycle), not patience, recovers the predictor.
func ChaosSurfaceDrift(at time.Duration, svc string, factor float64) ChaosEvent {
	return chaos.Drift(at.Seconds(), svc, factor)
}

// ChaosTelemetryCorrupt injects n bogus end-to-end latency samples of the
// given magnitude, plus matching phantom arrivals, into the telemetry plane
// at the offset — a metrics-pipeline glitch. Requests are unaffected; the
// lifecycle manager's Hampel sanitization should absorb the spike without
// tripping drift detection.
func ChaosTelemetryCorrupt(at, lat time.Duration, n int) ChaosEvent {
	return chaos.CorruptTelemetry(at.Seconds(), lat.Seconds(), n)
}

// ChaosControllerCrash kills the control plane itself at the given offset;
// the supervisor restarts it after restartAfter, warm (checkpoint +
// audit-tail restore) or cold. Requires a controller started with
// StartGRAFSupervised — against a plain StartGRAF controller the event is a
// logged no-op.
func ChaosControllerCrash(at, restartAfter time.Duration, warm bool) ChaosEvent {
	return chaos.CrashController(at.Seconds(), restartAfter.Seconds(), warm)
}

// Crash-recovery building blocks (see internal/ckpt and DESIGN.md §3e).
type (
	// CheckpointStore persists generations of control-plane snapshots with
	// corruption quarantine and previous-generation fallback.
	CheckpointStore = ckpt.Store
	// Supervisor runs the GRAF controller under panic protection with
	// periodic checkpointing and warm restart.
	Supervisor = ckpt.Supervisor
)

// ErrCorruptFile matches (via errors.Is) every corruption error raised by
// checkpoint and model files: bad magic, wrong version, truncation, or
// checksum mismatch.
var ErrCorruptFile = ckpt.ErrCorrupt

// NewCheckpointStore opens (creating if needed) a snapshot store rooted at
// dir.
func NewCheckpointStore(dir string) (*CheckpointStore, error) { return ckpt.NewStore(dir) }

// SupervisorOptions parameterizes StartGRAFSupervised.
type SupervisorOptions struct {
	// Dir is the checkpoint directory (required).
	Dir string

	// CheckpointEvery is the snapshot cadence in simulated time
	// (default 20s).
	CheckpointEvery time.Duration

	// Cold disables warm restore: after a crash the controller restarts
	// with empty state, as if no checkpoint existed. The recovery
	// benchmark's baseline.
	Cold bool

	// MaxRestarts bounds panic-driven restarts (default 8). Chaos-scripted
	// crashes don't consume the budget.
	MaxRestarts int

	// BackoffBase is the first panic-restart delay, doubling per restart
	// (default 1s, capped at 60s).
	BackoffBase time.Duration

	// PriorAudit supplies audit records recovered from a previous
	// process's log file (see ReadAuditLog), so a cross-process warm
	// restore can fold the decisions the dead process made after its last
	// checkpoint. Records at or before the snapshot time are ignored.
	PriorAudit []AuditRecord

	// Tune, if set, is called on every controller the supervisor builds
	// (initial boot and each restart) before it starts — the place to hang
	// OnDecision/OnHealth callbacks, since restarts replace the controller
	// instance.
	Tune func(*Controller)

	// Lifecycle, if set, runs the model-trust subsystem under the
	// supervisor's crash-safety umbrella: the manager re-attaches to every
	// rebuilt controller, its full state (phase, monitor, samples, model
	// archive) rides in every checkpoint, and a warm restore resumes a
	// mid-canary probation window exactly where it stood. Create it with
	// NewLifecycle; the supervisor starts its ticker.
	Lifecycle *Lifecycle
}

// Model-lifecycle building blocks (see internal/lifecycle and DESIGN.md §3f).
type (
	// Lifecycle is the model-trust subsystem: an online drift detector over
	// the predictor's live residuals, shadow retraining on post-drift
	// telemetry, gated canary promotion, and automatic rollback within a
	// probation window. Obtain one with NewLifecycle.
	Lifecycle = lifecycle.Manager
	// LifecycleConfig parameterizes the lifecycle manager.
	LifecycleConfig = lifecycle.Config
	// LifecyclePhase is the manager's state-machine phase (Trusted,
	// Drifted, Shadow, Probation).
	LifecyclePhase = lifecycle.Phase
	// ModelTrust is the controller's view of the model: trusted,
	// probation (envelope-clamped), or untrusted (heuristic fallback).
	ModelTrust = core.ModelTrust
)

// Lifecycle phases and controller trust levels.
const (
	LifecycleTrusted   = lifecycle.PhaseTrusted
	LifecycleDrifted   = lifecycle.PhaseDrifted
	LifecycleShadow    = lifecycle.PhaseShadow
	LifecycleProbation = lifecycle.PhaseProbation

	ModelTrusted   = core.ModelTrusted
	ModelProbation = core.ModelProbation
	ModelUntrusted = core.ModelUntrusted
)

// DefaultLifecycleConfig returns the lifecycle settings used by the
// evaluation (drift experiment, EXPERIMENTS.md).
func DefaultLifecycleConfig() LifecycleConfig { return lifecycle.DefaultConfig() }

// LifecycleOptions parameterizes NewLifecycle.
type LifecycleOptions struct {
	// Config overrides DefaultLifecycleConfig.
	Config *LifecycleConfig

	// BaseSamples overrides the offline training set retraining replays
	// (re-registered onto the drifted surface) so candidates keep global
	// shape. Defaults to the trained model's own Samples, which Save/
	// LoadModel round-trip with the weights.
	BaseSamples []Sample

	// Dir, when non-empty, persists every model generation as a
	// generation-numbered GRAFMDL1 file (model-00000001.graf, …) readable
	// with LoadModel.
	Dir string

	// OnEvent observes lifecycle transitions (trips, retrains, promotions,
	// rollbacks) for CLI logging.
	OnEvent func(at time.Duration, kind, detail string)
}

// NewLifecycle creates the model-trust manager for this simulation around a
// trained model (generation 0). The manager is not yet watching anything:
// either pass it to StartGRAFSupervised via SupervisorOptions.Lifecycle, or
// bind it to a plain controller yourself with Attach + Start:
//
//	ctl, _ := sim.StartGRAF(trained, slo)
//	lc := sim.NewLifecycle(trained, graf.LifecycleOptions{BaseSamples: samples})
//	lc.Attach(ctl)
//	lc.Start()
func (s *Simulation) NewLifecycle(t *TrainedModel, o LifecycleOptions) *Lifecycle {
	cfg := lifecycle.DefaultConfig()
	if o.Config != nil {
		cfg = *o.Config
	}
	if len(o.BaseSamples) > 0 {
		cfg.BaseSamples = o.BaseSamples
	} else if len(cfg.BaseSamples) == 0 {
		cfg.BaseSamples = t.Samples
	}
	if o.Dir != "" {
		cfg.Dir = o.Dir
	}
	m := lifecycle.NewManager(s.Cluster, t.Model, t.Bounds, t.SLO.Seconds(), cfg)
	// Generations persist in the same GRAFMDL1 frame as Save/LoadModel, with
	// the incumbent's metadata, so an archived generation is a loadable
	// TrainedModel in its own right.
	m.SaveModel = func(mod *Model, path string) error {
		tm := &TrainedModel{Model: mod, Bounds: t.Bounds, MinRate: t.MinRate, MaxRate: t.MaxRate, SLO: t.SLO}
		return tm.Save(path)
	}
	m.LoadModel = func(path string) (*Model, error) {
		tm, err := LoadModel(path)
		if err != nil {
			return nil, err
		}
		return tm.Model, nil
	}
	if s.obs != nil {
		m.Obs = obs.NewLifecycleObs(s.obs)
	}
	if o.OnEvent != nil {
		ev := o.OnEvent
		m.OnEvent = func(at float64, kind, detail string) {
			ev(time.Duration(at*float64(time.Second)), kind, detail)
		}
	}
	if cfg.Dir != "" {
		// Archive writes report failures through the manager's event stream
		// rather than failing promotion; creating the directory up front
		// keeps that path quiet in the common case.
		_ = os.MkdirAll(cfg.Dir, 0o755)
		m.PersistIncumbent()
	}
	return m
}

// ResumeFromCheckpoint prepares a fresh simulation to continue a previous
// process's run: it loads the latest valid snapshot from dir, fast-forwards
// the simulated clock to the snapshot instant, and rebuilds the cluster's
// scaling state (quotas, ready replicas, in-progress startups). Returns
// false when no valid snapshot exists — the caller proceeds with a cold
// boot. Call it before starting generators or StartGRAFSupervised (whose
// warm boot then restores the controller state from the same snapshot).
func (s *Simulation) ResumeFromCheckpoint(dir string) (bool, error) {
	store, err := ckpt.NewStore(dir)
	if err != nil {
		return false, err
	}
	snap, err := store.LoadLatest()
	if err != nil {
		if errors.Is(err, ckpt.ErrNoSnapshot) {
			return false, nil
		}
		return false, err
	}
	if snap.At > s.Engine.Now() {
		s.Engine.RunUntil(snap.At)
	}
	s.Cluster.RestoreState(snap.Cluster)
	return true, nil
}

// Observability building blocks (see internal/obs and DESIGN.md §3d).
type (
	// Observability bundles the flight-recorder telemetry planes: the
	// metrics registry behind /metrics, the span ring, and the JSONL audit
	// log. Obtain one with Simulation.EnableObservability.
	Observability = obs.Telemetry
	// AuditRecord is one line of the flight-recorder audit log.
	AuditRecord = obs.Record
	// ObsSpan is one timed unit of control-plane work in the span ring.
	ObsSpan = obs.Span
	// ReplayReport summarizes an audit-log replay (see ReplayAudit).
	ReplayReport = core.ReplayReport

	// Tracer mints deterministic distributed-trace spans: with the same
	// seed, two runs produce byte-identical span IDs (see internal/obs and
	// DESIGN.md §3i). Obtain one with NewTracer.
	Tracer = obs.Tracer
	// TracerOptions parameterizes NewTracer.
	TracerOptions = obs.TracerOptions
	// TraceSpan is one completed span in a tracer's buffer.
	TraceSpan = obs.TraceSpan
	// SpanContext identifies a span for parent/child propagation; its
	// Traceparent() form rides HTTP headers across processes.
	SpanContext = obs.SpanContext
	// SLOConfig is a per-tenant SLO error budget with fast/slow burn-rate
	// alert windows.
	SLOConfig = obs.SLOConfig
	// SLOAlert is one burn-rate alert firing.
	SLOAlert = obs.SLOAlert
)

// NewTracer builds a deterministic tracer; see TracerOptions.
func NewTracer(o TracerOptions) *Tracer { return obs.NewTracer(o) }

// DeriveTraceSeed maps (run seed, process name) to a tracer seed so each
// process of a distributed run mints IDs from a disjoint stream.
func DeriveTraceSeed(seed int64, proc string) int64 { return obs.DeriveTraceSeed(seed, proc) }

// ExportChromeTrace writes spans as Chrome trace-event JSON (load in
// chrome://tracing or Perfetto). Output is deterministic for a given span
// set.
func ExportChromeTrace(w io.Writer, spans []TraceSpan) error { return obs.ChromeTrace(w, spans) }

// ObservabilityConfig parameterizes Simulation.EnableObservability.
type ObservabilityConfig struct {
	// SpanRing bounds the in-memory span buffer (default 4096).
	SpanRing int

	// AuditW, if non-nil, receives the JSONL audit-log stream (e.g. a
	// file). The in-memory record buffer works either way.
	AuditW io.Writer

	// AuditMemory bounds the in-memory audit records (0 = keep all, which
	// in-process replay wants; long-running daemons writing to a file set
	// a cap).
	AuditMemory int
}

// ReadAuditLog parses a JSONL audit log previously written through
// ObservabilityConfig.AuditW. A log whose final line is torn (the writer
// crashed mid-append) yields the valid prefix plus ErrTruncatedAuditTail.
func ReadAuditLog(r io.Reader) ([]AuditRecord, error) { return obs.ReadLog(r) }

// RepairAuditLog reads the audit log at path and, when it ends in a
// crash-torn final record, truncates the file back to its valid prefix so
// subsequent appends keep the log parseable. It returns the salvaged
// records and whether a torn tail was removed.
func RepairAuditLog(path string) (recs []AuditRecord, repaired bool, err error) {
	return obs.RepairLog(path)
}

// ErrTruncatedAuditTail matches (via errors.Is) the error ReadAuditLog
// returns for a log ending in a torn record. The accompanying records are
// the valid prefix — complete for everything but the interrupted append.
var ErrTruncatedAuditTail = obs.ErrTruncatedTail

// ReplayAudit re-runs every model-path decision of a recorded audit log
// through the trained model's solver and verifies each reproduces
// bit-identically (same quotas, prediction, iteration count, convergence).
// The model must be the one the recording ran with — Save/LoadModel
// round-trips weights exactly, so a saved model replays its own logs.
func ReplayAudit(t *TrainedModel, log []AuditRecord) ReplayReport {
	return core.ReplayAudit(t.Model, log)
}

// LatencyModel is the prediction interface the solver and replay consume; a
// *Model implements it.
type LatencyModel = core.LatencyModel

// ReplayAuditManaged re-runs a log whose recording swapped model generations
// mid-run — a lifecycle promotion or rollback. Each decision record names the
// generation that produced it and replays through that generation's model.
// models maps generation → model; a live Lifecycle provides it via Models(),
// and an archive directory of generation files (LifecycleOptions.Dir) can
// rebuild it offline with LoadModel.
func ReplayAuditManaged(models map[int]LatencyModel, log []AuditRecord) ReplayReport {
	return core.ReplayAuditModels(models, log)
}

// Simulation bundles a deterministic discrete-event engine with a cluster
// running one application.
type Simulation struct {
	Engine  *sim.Engine
	Cluster *cluster.Cluster

	chaosInj *ChaosInjector
	obs      *Observability
}

// EnableObservability attaches a flight-recorder telemetry bundle to the
// simulation: cluster scale events and instance churn, chaos firings, and —
// for controllers started after this call — per-decision spans, metrics and
// audit records. Returns the bundle; serve its Handler (or call Serve) to
// expose /metrics, /debug/vars and /debug/pprof/*. Calling it again replaces
// the bundle.
func (s *Simulation) EnableObservability(cfg ObservabilityConfig) *Observability {
	t := obs.New(obs.Options{SpanRing: cfg.SpanRing, AuditW: cfg.AuditW, AuditMemory: cfg.AuditMemory})
	s.obs = t
	s.Cluster.Obs = obs.NewClusterObs(t)
	if s.chaosInj != nil {
		s.chaosInj.Obs = obs.NewChaosObs(t)
	}
	return t
}

// Observability returns the bundle attached by EnableObservability, or nil.
func (s *Simulation) Observability() *Observability { return s.obs }

// NewSimulation deploys a on a fresh simulated cluster (one warm instance
// per microservice) with the default Kubernetes-like configuration.
func NewSimulation(a *App, seed int64) *Simulation {
	eng := sim.NewEngine(seed)
	return &Simulation{Engine: eng, Cluster: cluster.New(eng, a, cluster.DefaultConfig())}
}

// RunFor advances simulated time by d.
func (s *Simulation) RunFor(d time.Duration) {
	s.Engine.RunUntil(s.Engine.Now() + d.Seconds())
}

// Now returns the current simulated time since start.
func (s *Simulation) Now() time.Duration {
	return time.Duration(s.Engine.Now() * float64(time.Second))
}

// P99 returns the end-to-end 99th-percentile latency over the trailing
// window.
func (s *Simulation) P99(window time.Duration) time.Duration {
	return time.Duration(s.Cluster.E2ELatencyQuantile(0.99, window.Seconds()) * float64(time.Second))
}

// OpenLoop attaches a Vegeta-like generator with the given rate shape
// (req/s as a function of simulated seconds).
func (s *Simulation) OpenLoop(rate func(float64) float64) *OpenLoop {
	return workload.NewOpenLoop(s.Cluster, rate)
}

// ClosedLoop attaches a Locust-like generator with the given user-count
// shape.
func (s *Simulation) ClosedLoop(users func(float64) int) *ClosedLoop {
	return workload.NewClosedLoop(s.Cluster, users)
}

// Chaos returns the simulation's fault injector. Event offsets in a played
// scenario are relative to the simulated time of the Play call, so a
// scenario can be replayed against a warmed-up cluster.
func (s *Simulation) Chaos() *ChaosInjector {
	if s.chaosInj == nil {
		s.chaosInj = chaos.New(s.Cluster)
		s.chaosInj.Obs = obs.NewChaosObs(s.obs)
	}
	return s.chaosInj
}

// StartHPA runs the Kubernetes autoscaler baseline over every microservice
// at the given CPU-utilization threshold.
func (s *Simulation) StartHPA(threshold float64) *HPA {
	h := autoscale.NewHPA(s.Cluster, autoscale.DefaultHPAConfig(threshold))
	h.Start()
	return h
}

// StartFIRM runs the FIRM-like baseline.
func (s *Simulation) StartFIRM() *FIRMLike {
	f := autoscale.NewFIRMLike(s.Cluster, autoscale.DefaultFIRMConfig())
	f.Start()
	return f
}

// StartGRAF runs the GRAF controller using a trained model. It fails when
// the model's shape does not match the simulation's application — e.g. a
// model trained for a different app, or a stale file after the service
// graph changed.
func (s *Simulation) StartGRAF(t *TrainedModel, slo time.Duration) (*Controller, error) {
	cfg := core.DefaultControllerConfig(slo.Seconds())
	return s.StartGRAFWith(t, cfg)
}

// StartGRAFWith is StartGRAF with an explicit controller configuration
// (e.g. VanillaControllerConfig for a guardrail-free paper-exact loop).
// The trained workload range always comes from the model.
func (s *Simulation) StartGRAFWith(t *TrainedModel, cfg ControllerConfig) (*Controller, error) {
	if err := t.ValidateFor(s.Cluster.App); err != nil {
		return nil, err
	}
	an := core.NewAnalyzer(s.Cluster.App)
	cfg.TrainedMinRate = t.MinRate
	cfg.TrainedMaxRate = t.MaxRate
	ctl := core.NewController(s.Cluster, t.Model, an, t.Bounds, cfg)
	if s.obs != nil {
		ctl.Obs = obs.NewControllerObs(s.obs)
		// The header record carries everything a replay needs to
		// reconstruct the solver calls: the SLO and solver configuration.
		s.obs.Flight.Record(obs.Record{
			Type:     "header",
			At:       s.Engine.Now(),
			App:      s.Cluster.App.Name,
			SLO:      cfg.SLO,
			Services: s.Cluster.App.ServiceNames(),
			Solver:   core.SolverConfigMap(cfg.Solver),
		})
	}
	ctl.Start()
	return ctl, nil
}

// StartGRAFSupervised runs the GRAF controller under the crash-recovery
// supervisor: decisions execute inside a panic guard, the control plane's
// state (controller + cluster scaling state) is checkpointed to o.Dir every
// o.CheckpointEvery of simulated time, and on death — a panic, or a
// scripted ChaosControllerCrash — the controller is rebuilt and (unless
// o.Cold) warm-restored from the latest valid snapshot plus the audit-log
// tail. The simulation's chaos injector is wired to the supervisor, so
// ControllerCrash events target it.
func (s *Simulation) StartGRAFSupervised(t *TrainedModel, cfg ControllerConfig, o SupervisorOptions) (*Supervisor, error) {
	if err := t.ValidateFor(s.Cluster.App); err != nil {
		return nil, err
	}
	store, err := ckpt.NewStore(o.Dir)
	if err != nil {
		return nil, err
	}
	cfg.TrainedMinRate = t.MinRate
	cfg.TrainedMaxRate = t.MaxRate
	build := func() *Controller {
		an := core.NewAnalyzer(s.Cluster.App)
		ctl := core.NewController(s.Cluster, t.Model, an, t.Bounds, cfg)
		if s.obs != nil {
			ctl.Obs = obs.NewControllerObs(s.obs)
		}
		if o.Tune != nil {
			o.Tune(ctl)
		}
		if o.Lifecycle != nil {
			// Restarts replace the controller instance; the manager follows.
			// The supervisor restores controller state after this, then
			// RestoreExtra re-applies the restored lifecycle world on top,
			// so a warm boot ends with the snapshot's generation and trust.
			o.Lifecycle.Attach(ctl)
		}
		return ctl
	}
	scfg := ckpt.SupervisorConfig{
		Store:            store,
		Build:            build,
		CheckpointEveryS: 20,
		Warm:             !o.Cold,
		MaxRestarts:      o.MaxRestarts,
	}
	if o.Lifecycle != nil {
		lc := o.Lifecycle
		scfg.SnapshotExtra = lc.SnapshotState
		scfg.RestoreExtra = func(blob []byte) {
			// A snapshot from a pre-lifecycle run carries no blob; the
			// manager keeps its in-memory state. A corrupt blob is reported
			// through the manager's own event stream and likewise keeps the
			// live state — a lifecycle decode problem must not take down an
			// otherwise healthy warm restore.
			if err := lc.RestoreState(blob); err != nil && lc.OnEvent != nil {
				lc.OnEvent(s.Engine.Now(), "restore-error", err.Error())
			}
		}
	}
	if o.CheckpointEvery > 0 {
		scfg.CheckpointEveryS = o.CheckpointEvery.Seconds()
	}
	if o.BackoffBase > 0 {
		scfg.BackoffBaseS = o.BackoffBase.Seconds()
	}
	prior := o.PriorAudit
	if s.obs != nil {
		scfg.Obs = obs.NewSupervisorObs(s.obs)
		flight := s.obs.Flight
		scfg.TailSince = func(at float64) []AuditRecord {
			var out []AuditRecord
			for _, r := range prior {
				if r.At > at {
					out = append(out, r)
				}
			}
			for _, r := range flight.Records() {
				if r.At > at {
					out = append(out, r)
				}
			}
			return out
		}
		// One header record for the whole supervised run: restarts resume
		// the same recording rather than opening a new one.
		s.obs.Flight.Record(obs.Record{
			Type:     "header",
			At:       s.Engine.Now(),
			App:      s.Cluster.App.Name,
			SLO:      cfg.SLO,
			Services: s.Cluster.App.ServiceNames(),
			Solver:   core.SolverConfigMap(cfg.Solver),
		})
	} else if len(prior) > 0 {
		scfg.TailSince = func(at float64) []AuditRecord {
			var out []AuditRecord
			for _, r := range prior {
				if r.At > at {
					out = append(out, r)
				}
			}
			return out
		}
	}
	sup := ckpt.NewSupervisor(s.Engine, s.Cluster, scfg)
	s.Chaos().Control = sup
	sup.Start()
	if o.Lifecycle != nil {
		o.Lifecycle.Start()
	}
	return sup, nil
}

// TrainOptions parameterizes offline training (§3.7, §5 "Sample Collection
// and Training").
type TrainOptions struct {
	// SLO is the end-to-end tail-latency objective used by Algorithm 1 to
	// bound the search space.
	SLO time.Duration

	// MinRate and MaxRate bound the total front-end request rates the
	// training set covers.
	MinRate, MaxRate float64

	// Samples, Iterations and Batch override the training budget
	// (defaults: 4000 samples, 1600 iterations, batch 128).
	Samples    int
	Iterations int
	Batch      int

	// SimulatorLabels labels every sample with a discrete-event
	// measurement instead of the calibrated analytic fast path. Slower
	// but exact.
	SimulatorLabels bool

	// Obs, if set, streams the learning curve and per-batch timing into
	// the telemetry bundle's registry and span ring during training.
	Obs *Observability

	Seed int64
}

// TrainedModel is the output of Train: a latency prediction model plus the
// search-space bounds and workload range it was trained for.
type TrainedModel struct {
	Model   *Model
	Bounds  Bounds
	MinRate float64
	MaxRate float64
	SLO     time.Duration

	// Samples is the training set the model was fit on. Save persists it
	// with the model so a loaded model can feed lifecycle retraining
	// (NewLifecycle's replay set) without re-collecting.
	Samples []Sample
}

// Train runs GRAF's offline path for application a: Algorithm 1 search
// space reduction, state-aware sample collection, and GNN training.
func Train(a *App, o TrainOptions) *TrainedModel {
	if o.Samples <= 0 {
		o.Samples = 4000
	}
	if o.Iterations <= 0 {
		o.Iterations = 1600
	}
	if o.Batch <= 0 {
		o.Batch = 128
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	probe := 0.75 * o.MaxRate
	sc := core.NewSampleCollector(a, core.NewAnalyticMeasurer(a, 0, o.Seed), o.SLO.Seconds(), probe)
	sc.ProbeRateLo = o.MinRate
	sc.Seed = o.Seed + 10
	b := sc.ReduceSearchSpace()

	var m core.Measurer
	if o.SimulatorLabels {
		m = core.NewSimMeasurer(a, o.Seed+20)
	} else {
		cal := core.Calibrate(a, b, o.MinRate, o.MaxRate, 5*o.SLO.Seconds(), 12, o.Seed+30)
		m = core.CalibratedMeasurer{
			AnalyticMeasurer: core.NewAnalyticMeasurer(a, 0.15, o.Seed+40),
			Cal:              cal,
		}
	}
	sc.M = m
	sc.MaxLatency = 5 * o.SLO.Seconds()
	samples := sc.Collect(o.Samples, o.MinRate, o.MaxRate, b)

	cfg := gnn.DefaultConfig(len(a.Services), a.Parents())
	model := gnn.New(cfg, rand.New(rand.NewSource(o.Seed+50)))
	tc := gnn.DefaultTrainConfig()
	tc.Iterations, tc.Batch, tc.Seed = o.Iterations, o.Batch, o.Seed+60
	tc.LR = 2e-3
	tc.Obs = obs.NewTrainObs(o.Obs)
	model.Train(samples, tc)
	return &TrainedModel{Model: model, Bounds: b, MinRate: o.MinRate, MaxRate: o.MaxRate, SLO: o.SLO, Samples: samples}
}

// ValidateFor checks that the trained model's shape matches application a:
// same service count, consistent bounds, and the same caller structure. A
// mismatch means the model was trained for a different application (or an
// older revision of this one) and its predictions would be garbage.
func (t *TrainedModel) ValidateFor(a *App) error {
	if t == nil || t.Model == nil {
		return fmt.Errorf("graf: trained model is nil")
	}
	n := len(a.Services)
	if t.Model.Cfg.Nodes != n {
		return fmt.Errorf("graf: model trained for %d services, application %q has %d",
			t.Model.Cfg.Nodes, a.Name, n)
	}
	if len(t.Bounds.Lo) != n || len(t.Bounds.Hi) != n {
		return fmt.Errorf("graf: bounds cover %d/%d services, application %q has %d",
			len(t.Bounds.Lo), len(t.Bounds.Hi), a.Name, n)
	}
	want := a.Parents()
	got := t.Model.Cfg.Parents
	if len(got) != len(want) {
		return fmt.Errorf("graf: model graph has %d nodes, application %q has %d",
			len(got), a.Name, len(want))
	}
	for i := range want {
		if !sameParentSet(got[i], want[i]) {
			return fmt.Errorf("graf: model graph disagrees with application %q at service %q: callers %v, want %v",
				a.Name, a.Services[i].Name, got[i], want[i])
		}
	}
	return nil
}

// sameParentSet compares two caller lists as sets.
func sameParentSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Save persists the trained model and its metadata to path, crash-safely:
// the framed (magic/version/CRC32) encoding is written to a temp file,
// fsynced, and atomically renamed over the target, so an interrupted Save
// leaves either the previous file or the complete new one — never a torn
// mixture.
func (t *TrainedModel) Save(path string) error {
	blob, err := encodeTrained(t)
	if err != nil {
		return err
	}
	return ckpt.WriteFileAtomic(path, blob, 0o644)
}

// LoadModel restores a model previously written with Save. It rejects
// truncated, bit-flipped or wrong-format files with an error identifying
// what failed validation (errors.Is(err, ErrCorruptFile) distinguishes
// corruption from I/O trouble).
func LoadModel(path string) (*TrainedModel, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeTrained(blob)
}

// Solve runs the configuration solver once: the minimal per-service quotas
// (millicores, in App.Services order) whose predicted tail latency meets
// the SLO for the given per-service workload vector.
func Solve(t *TrainedModel, load []float64, slo time.Duration) Solution {
	return core.Solve(t.Model, load, slo.Seconds(), t.Bounds.Lo, t.Bounds.Hi, core.DefaultSolverConfig())
}

// DistributeWorkload converts per-API frontend rates to the per-service
// workload vector the model and solver consume, using the application's
// declared call trees (the Workload Analyzer uses live traces instead).
func DistributeWorkload(a *App, apiRates map[string]float64) []float64 {
	return core.NewAnalyzer(a).Distribute(apiRates)
}

// ErrFencedEpoch matches (via errors.Is) the typed 409 a shard returns for a
// mutation stamped with a stale router epoch — the sender is a router
// generation that lost leadership to a resumed or standby successor
// (DESIGN.md §3k). Fencing is fatal to the sender's round loop: retrying
// cannot succeed, a newer generation owns the fleet.
var ErrFencedEpoch = rpc.ErrFencedEpoch

// IsFencedEpoch reports whether err is (or wraps) a stale-epoch rejection —
// the signal for a router generation to stand down as a zombie rather than
// treat the shard as failed.
func IsFencedEpoch(err error) bool { return rpc.IsFenced(err) }

// --- Fleet mode (sharded multi-tenant control plane, DESIGN.md §3g) ---------

type (
	// Fleet runs many tenant applications — each with its own simulated
	// cluster and controller — in one process, sharing one latency model
	// through a batched, cached inference service.
	Fleet = fleet.Fleet

	// FleetConfig parameterizes NewFleet beyond what the trained model
	// provides: the tenant set, worker/shard counts, and service tuning.
	FleetConfig = fleet.Config

	// FleetTenant describes one tenant application in a fleet.
	FleetTenant = fleet.TenantConfig

	// FleetStats aggregates a fleet run.
	FleetStats = fleet.Stats

	// InferenceService is the shared batched GNN inference service with a
	// quantized prediction cache; NewFleet wires one up automatically.
	InferenceService = fleet.InferenceService

	// InferenceServiceConfig tunes request batching and the prediction
	// cache grid.
	InferenceServiceConfig = fleet.ServiceConfig
)

// NewFleet builds a multi-tenant fleet from a trained model: the
// application graph, solver bounds, SLO, and trained workload range all
// come from t; cfg supplies the tenant set and scheduling knobs (its App,
// Model, Bounds, SLO, MinRate and MaxRate fields are overwritten).
func NewFleet(a *App, t *TrainedModel, cfg FleetConfig) (*Fleet, error) {
	if err := t.ValidateFor(a); err != nil {
		return nil, err
	}
	cfg.App = a
	cfg.Model = t.Model
	cfg.Bounds = t.Bounds
	cfg.SLO = t.SLO.Seconds()
	cfg.MinRate = t.MinRate
	cfg.MaxRate = t.MaxRate
	return fleet.New(cfg)
}
