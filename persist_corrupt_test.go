package graf

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadModelRejectsCorruption is the table-driven corruption sweep over
// the framed model file: truncation, bit flips, wrong magic and wrong
// version must all surface ErrCorruptFile — never a silently wrong model.
func TestLoadModelRejectsCorruption(t *testing.T) {
	tr := trained(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.graf")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty file", func(b []byte) []byte { return nil }},
		{"header only prefix", func(b []byte) []byte { return b[:16] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-64] }},
		{"appended bytes", func(b []byte) []byte { return append(b, 0xAA, 0xBB) }},
		{"magic flip", func(b []byte) []byte { b[2] ^= 0x20; return b }},
		{"version bump", func(b []byte) []byte { b[11]++; return b }},
		{"payload bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }},
		{"checksum flip", func(b []byte) []byte { b[21] ^= 0x40; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "-"))
			if err := os.WriteFile(p, tc.mut(append([]byte(nil), good...)), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadModel(p)
			if err == nil {
				t.Fatal("corrupt model file loaded without error")
			}
			if !errors.Is(err, ErrCorruptFile) {
				t.Errorf("err = %v, want ErrCorruptFile", err)
			}
		})
	}

	// The pristine file must still load after all that.
	if _, err := LoadModel(path); err != nil {
		t.Fatalf("pristine model rejected: %v", err)
	}
}

// TestSaveIsAtomic checks the crash-safety contract of Save: overwriting an
// existing model either fully succeeds or leaves the old file, and no temp
// files are left in the directory.
func TestSaveIsAtomic(t *testing.T) {
	tr := trained(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.graf")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := tr.Save(path); err != nil { // overwrite in place
		t.Fatal(err)
	}
	if _, err := LoadModel(path); err != nil {
		t.Fatalf("model unreadable after overwrite: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "model.graf" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("directory not clean after save: %v", names)
	}
}
