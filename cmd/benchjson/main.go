// Command benchjson converts `go test -bench` text output into JSON so CI
// and dashboards can track the hot-path numbers without scraping the text
// format. It reads benchmark output on stdin and writes a JSON document:
//
//	go test -run '^$' -bench . -benchmem ./internal/gnn | benchjson -o out.json
//
// Lines it does not recognize (compilation output, experiment tables printed
// by the harness benchmarks) are ignored, so piping the full `go test`
// output is fine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. the fleet-rpc run's
	// "migration-blackout-ms"), keyed by unit name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Output is the document benchjson emits.
type Output struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON here (default stdout)")
	flag.Parse()

	doc := parse(bufio.NewScanner(os.Stdin))
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) Output {
	// Experiment benchmarks print multi-megabyte tables; allow long lines.
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var doc Output
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseResult(line); ok {
				b.Package = pkg
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc
}

// parseResult parses one result line, e.g.
//
//	BenchmarkPredictWith-8   19234   62115 ns/op   0 B/op   0 allocs/op
func parseResult(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	// Keep the GOMAXPROCS suffix off the name but don't lose exotic names
	// that contain dashes of their own: only strip a trailing -<digits>.
	b := Benchmark{Name: stripProcSuffix(f[0]), Runs: runs}
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				b.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				b.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				b.AllocsPerOp = v
			}
		default:
			// Custom b.ReportMetric units ride along verbatim.
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = v
			}
		}
	}
	if b.NsPerOp == 0 && b.BytesPerOp == 0 && b.AllocsPerOp == 0 && len(b.Extra) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
