package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: graf/internal/gnn
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkPredict-8   	    9258	    114169 ns/op	   97808 B/op	     866 allocs/op
BenchmarkPredictWith-8   	   18016	     64333 ns/op	       0 B/op	       0 allocs/op
== fleet: some experiment table the harness printed ==
note: fleet_speedup=3.7x
PASS
ok  	graf/internal/gnn	4.4s
pkg: graf
BenchmarkSolver-8   	       1	29887144 ns/op	 9874464 B/op	   85147 allocs/op
`
	doc := parse(bufio.NewScanner(strings.NewReader(in)))
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU == "" {
		t.Fatalf("platform header not parsed: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkPredict" || b.Package != "graf/internal/gnn" ||
		b.Runs != 9258 || b.NsPerOp != 114169 || b.BytesPerOp != 97808 || b.AllocsPerOp != 866 {
		t.Fatalf("first benchmark mis-parsed: %+v", b)
	}
	// Zero-alloc rows keep their ns/op even though B/op and allocs/op are 0.
	if w := doc.Benchmarks[1]; w.Name != "BenchmarkPredictWith" || w.NsPerOp != 64333 || w.AllocsPerOp != 0 {
		t.Fatalf("zero-alloc benchmark mis-parsed: %+v", w)
	}
	// The second pkg: line rebinds the package for later results.
	if s := doc.Benchmarks[2]; s.Name != "BenchmarkSolver" || s.Package != "graf" {
		t.Fatalf("package rebinding broken: %+v", s)
	}
}

func TestStripProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkPredict-8":       "BenchmarkPredict",
		"BenchmarkPredict":         "BenchmarkPredict",
		"BenchmarkFoo-bar":         "BenchmarkFoo-bar",
		"BenchmarkFoo/sub-case-16": "BenchmarkFoo/sub-case",
		"BenchmarkFoo/n=10-4":      "BenchmarkFoo/n=10",
	} {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
