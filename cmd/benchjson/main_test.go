package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: graf/internal/gnn
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkPredict-8   	    9258	    114169 ns/op	   97808 B/op	     866 allocs/op
BenchmarkPredictWith-8   	   18016	     64333 ns/op	       0 B/op	       0 allocs/op
== fleet: some experiment table the harness printed ==
note: fleet_speedup=3.7x
PASS
ok  	graf/internal/gnn	4.4s
pkg: graf
BenchmarkSolver-8   	       1	29887144 ns/op	 9874464 B/op	   85147 allocs/op
`
	doc := parse(bufio.NewScanner(strings.NewReader(in)))
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU == "" {
		t.Fatalf("platform header not parsed: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkPredict" || b.Package != "graf/internal/gnn" ||
		b.Runs != 9258 || b.NsPerOp != 114169 || b.BytesPerOp != 97808 || b.AllocsPerOp != 866 {
		t.Fatalf("first benchmark mis-parsed: %+v", b)
	}
	// Zero-alloc rows keep their ns/op even though B/op and allocs/op are 0.
	if w := doc.Benchmarks[1]; w.Name != "BenchmarkPredictWith" || w.NsPerOp != 64333 || w.AllocsPerOp != 0 {
		t.Fatalf("zero-alloc benchmark mis-parsed: %+v", w)
	}
	// The second pkg: line rebinds the package for later results.
	if s := doc.Benchmarks[2]; s.Name != "BenchmarkSolver" || s.Package != "graf" {
		t.Fatalf("package rebinding broken: %+v", s)
	}
}

// Custom b.ReportMetric units (the fleet-rpc control-plane numbers) land in
// Extra keyed by unit, without disturbing the standard fields.
func TestParseExtraMetrics(t *testing.T) {
	in := `pkg: graf
BenchmarkFleetRPC 	       1	3357124668 ns/op	         0 lost-decisions	        17.89 migration-blackout-ms	       367.7 rebalance-blackout-ms	        75.60 ticks/s
`
	doc := parse(bufio.NewScanner(strings.NewReader(in)))
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkFleetRPC" || b.NsPerOp != 3357124668 {
		t.Fatalf("standard fields mis-parsed: %+v", b)
	}
	want := map[string]float64{
		"lost-decisions":        0,
		"migration-blackout-ms": 17.89,
		"rebalance-blackout-ms": 367.7,
		"ticks/s":               75.60,
	}
	for unit, v := range want {
		if b.Extra[unit] != v {
			t.Errorf("Extra[%q] = %v, want %v", unit, b.Extra[unit], v)
		}
	}
	// A metrics-only line (benchtime trimmed ns/op away) must still parse.
	in2 := "BenchmarkX-8 	 1	 12.5 custom-units\n"
	doc2 := parse(bufio.NewScanner(strings.NewReader(in2)))
	if len(doc2.Benchmarks) != 1 || doc2.Benchmarks[0].Extra["custom-units"] != 12.5 {
		t.Fatalf("metrics-only line mis-parsed: %+v", doc2.Benchmarks)
	}
}

func TestStripProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkPredict-8":       "BenchmarkPredict",
		"BenchmarkPredict":         "BenchmarkPredict",
		"BenchmarkFoo-bar":         "BenchmarkFoo-bar",
		"BenchmarkFoo/sub-case-16": "BenchmarkFoo/sub-case",
		"BenchmarkFoo/n=10-4":      "BenchmarkFoo/n=10",
	} {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
