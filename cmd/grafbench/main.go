// Command grafbench regenerates the paper's tables and figures (DESIGN.md's
// experiment index) and prints them as text tables.
//
// Usage:
//
//	grafbench                 # run every experiment at the standard scale
//	grafbench -exp fig14      # run one experiment
//	grafbench -scale quick    # quick | standard | full
//	grafbench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"graf/internal/bench"
)

var runners = map[string]func(bench.Scale) bench.Result{
	"fig01":           bench.Fig01InstanceCreation,
	"fig02":           bench.Fig02SurgeInstances,
	"fig03":           bench.Fig03SurgeLatency,
	"fig06":           bench.Fig06LatencyCurves,
	"fig07":           bench.Fig07CascadingEffect,
	"tab01":           bench.Tab01Hyperparameters,
	"tab02":           bench.Tab02PredictionError,
	"fig11":           bench.Fig11MPNNAblation,
	"fig12":           bench.Fig12LossHeatmap,
	"fig13":           bench.Fig13SearchSpace,
	"fig14":           bench.Fig14TotalCPU,
	"fig15":           bench.Fig15PerMSBoutique,
	"fig16":           bench.Fig16PerMSSocial,
	"fig17":           bench.Fig17SLOTargeting,
	"fig18":           bench.Fig18UserScaling,
	"fig19":           bench.Fig19CostBenefit,
	"tab03":           bench.Tab03Budget,
	"fig20":           bench.Fig20AzureReplay,
	"fig21":           bench.Fig21SurgeComparison,
	"fig22":           bench.Fig22Convergence,
	"abl-loss":        bench.AblationLoss,
	"abl-steps":       bench.AblationSteps,
	"abl-solver":      bench.AblationSolver,
	"abl-sampler":     bench.AblationSampler,
	"abl-integer":     bench.AblationInteger,
	"abl-anomaly":     bench.AblationAnomaly,
	"scalability":     bench.Scalability,
	"abl-partition":   bench.AblationPartition,
	"chaos":           bench.ChaosRobustness,
	"recovery":        bench.Recovery,
	"drift":           bench.Drift,
	"replay":          bench.ObsReplay,
	"obs-overhead":    bench.ObsOverhead,
	"fleet":           bench.Fleet,
	"fleet-rpc":       bench.FleetRPC,
	"router-failover": bench.RouterFailover,
	"overload":        bench.Overload,
	"slo-burn":        bench.SLOBurn,
	"trace-overhead":  bench.TraceOverhead,
	"forecast":        bench.Forecast,
}

// order runs cheap observation experiments first and groups the ones that
// share a trained pipeline.
var order = []string{
	"fig01", "fig06", "fig02", "fig03", "fig07",
	"tab01", "tab02", "fig11", "fig12", "fig13",
	"fig14", "fig15", "fig16", "fig17", "fig18",
	"tab03", "fig19", "fig20", "fig21", "fig22",
	"abl-loss", "abl-steps", "abl-solver", "abl-sampler",
	"abl-integer", "abl-anomaly", "abl-partition", "scalability",
	"chaos", "recovery", "drift", "replay", "obs-overhead",
	"fleet", "fleet-rpc", "router-failover", "overload", "slo-burn", "trace-overhead",
	"forecast",
}

func main() {
	exp := flag.String("exp", "", "experiment id (default: all)")
	scaleName := flag.String("scale", "standard", "quick | standard | full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(runners))
		for id := range runners {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	var scale bench.Scale
	switch *scaleName {
	case "quick":
		scale = bench.Quick()
	case "standard":
		scale = bench.Standard()
	case "full":
		scale = bench.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	ids := order
	if *exp != "" {
		r, ok := runners[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
		_ = r
	}
	for _, id := range ids {
		start := time.Now()
		res := runners[id](scale)
		fmt.Println(res.Format())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
