// Command grafrouter is the multi-process fleet's control-plane head: it
// spawns (or attaches to) N grafd shard processes, installs the fleet spec
// on each over HTTP, places tenants with consistent hashing, and drives the
// global round clock. Shards are health-checked with heartbeat probes; every
// call carries retry/timeout/exponential-backoff with jitter and a per-shard
// circuit breaker, so one slow or dead shard never stalls the router loop.
//
// Robustness drills:
//
//	grafrouter -model m.graf -spawn 2 -fleet 8 -dur 120 -audit-dir a -ckpt c
//	grafrouter ... -kill-shard 0@12        # SIGKILL shard 0 at round 12:
//	                                       # respawn/reassign, replay, verify
//	grafrouter ... -migrate tenant-03@5:1  # drain → checkpoint → restore on
//	                                       # shard 1, verified byte-identical
//
// Crash-safe router & failover (-state-dir, DESIGN.md §3k):
//
//	grafrouter ... -state-dir s -router-addr :7171 \
//	  -migrate tenant-03@5:other -crash-after-drain   # primary: self-SIGKILL
//	                                                  # mid-migration
//	grafrouter ... -state-dir s -standby HOST:7171    # standby: probe, take
//	                                                  # over on sustained miss
//	grafrouter ... -state-dir s -resume               # warm restart in place
//
// A resumed or standby router bumps the fencing epoch, reconciles its
// checkpointed placement against every shard's reported residency, rolls a
// mid-flight migration forward or back, and continues the round sequence;
// the dead generation's writes are rejected by every shard
// (`fenced_writes_accepted=0` on the summary line).
//
// The run exits non-zero if any tenant lost a decision, failed verification,
// finished behind the round clock, or if any shard accepted a stale-epoch
// mutation. `lost_decisions=0` on the summary line is the machine-checked
// success marker.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"graf"
	"graf/internal/chaos"
	"graf/internal/obs"
	"graf/internal/overload"
	"graf/internal/rpc"
)

type routerOptions struct {
	model    string
	appName  string
	shape    string
	rate     float64
	seed     int64
	durS     int
	fleetN   int
	spawn    int
	shards   string
	grafdBin string
	ckpt     string
	auditDir string

	ckptEveryRounds int
	restartBudget   int
	killShard       string
	migrate         string
	netDrop         float64
	netDelayMS      float64
	roundBudgetMS   float64
	brownout        string

	trace     string
	obsAddr   string
	sloBudget float64

	// Crash safety & failover (DESIGN.md §3k).
	stateDir        string
	resume          bool
	routerAddr      string
	standby         string
	standbyMisses   int
	standbyEveryMS  float64
	crashAfterDrain bool
	crashAtRound    int
}

// validate rejects contradictory flag combinations before any process is
// spawned — the router-side twin of grafd's own flag validation.
func (o routerOptions) validate() error {
	if o.model == "" {
		return fmt.Errorf("need -model <path> (every shard process loads the same artifact)")
	}
	if o.spawn > 0 && o.shards != "" {
		return fmt.Errorf("-spawn starts shard processes and -shards attaches to running ones: pick one")
	}
	takeover := o.resume || o.standby != ""
	if o.spawn <= 0 && o.shards == "" && !takeover {
		return fmt.Errorf("need -spawn N or -shards addr,addr")
	}
	if takeover {
		if o.stateDir == "" {
			return fmt.Errorf("-resume/-standby restore the router from its durable state: they need -state-dir")
		}
		if o.spawn > 0 {
			return fmt.Errorf("-resume/-standby attach to the previous generation's shards (recorded in -state-dir); they cannot -spawn a new fleet")
		}
		if o.killShard != "" {
			return fmt.Errorf("-kill-shard SIGKILLs a spawned child; a resumed/standby router spawned none")
		}
	}
	if o.resume && o.standby != "" {
		return fmt.Errorf("-resume takes over immediately and -standby waits for the primary to die: pick one")
	}
	if o.crashAfterDrain && o.migrate == "" {
		return fmt.Errorf("-crash-after-drain fires inside a migration's drain window: it needs -migrate")
	}
	if (o.crashAfterDrain || o.crashAtRound > 0) && o.stateDir == "" {
		return fmt.Errorf("a scripted router crash without -state-dir leaves nothing to resume from")
	}
	if o.standby != "" && o.standbyMisses <= 0 {
		return fmt.Errorf("-standby-misses %d must be positive", o.standbyMisses)
	}
	if o.fleetN <= 0 {
		return fmt.Errorf("-fleet %d must be positive", o.fleetN)
	}
	if o.durS <= 0 {
		return fmt.Errorf("-dur %d s must be positive", o.durS)
	}
	if o.rate <= 0 {
		return fmt.Errorf("-rate %v must be positive", o.rate)
	}
	if o.killShard != "" && o.spawn <= 0 {
		return fmt.Errorf("-kill-shard sends SIGKILL to a spawned shard; it needs -spawn (the router does not kill processes it did not start)")
	}
	if o.netDrop < 0 || o.netDrop >= 1 {
		return fmt.Errorf("-net-drop %v must be in [0,1)", o.netDrop)
	}
	if o.sloBudget < 0 || o.sloBudget >= 1 {
		return fmt.Errorf("-slo-budget %v must be in [0,1) (fraction of time allowed in violation; 0 disables)", o.sloBudget)
	}
	if o.roundBudgetMS < 0 {
		return fmt.Errorf("-round-budget-ms %v must be non-negative (0 disables the round deadline)", o.roundBudgetMS)
	}
	if _, err := rpc.ParseBrownout(o.brownout); err != nil {
		return fmt.Errorf("-brownout: %v", err)
	}
	return nil
}

// shardProc is one spawned grafd -shard child.
type shardProc struct {
	slot int
	addr string
	cmd  *exec.Cmd
	done chan struct{} // closed when Wait returns
}

// spawnShard starts one grafd shard process and parses its bound address
// from the contract line `shard listening on HOST:PORT` (always the first
// stdout line). Remaining output is streamed through with a slot prefix.
func spawnShard(o routerOptions, slot int) (*shardProc, error) {
	args := []string{"-model", o.model, "-shard", "127.0.0.1:0"}
	if o.ckpt != "" {
		args = append(args, "-ckpt", o.ckpt)
	}
	if o.auditDir != "" {
		args = append(args, "-audit-dir", o.auditDir)
	}
	cmd := exec.Command(o.grafdBin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawn shard %d (%s): %w", slot, o.grafdBin, err)
	}
	p := &shardProc{slot: slot, cmd: cmd, done: make(chan struct{})}

	// If the address line never arrives the child is broken; don't hang the
	// router on it.
	giveUp := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "shard listening on "); ok {
			p.addr = strings.TrimSpace(addr)
			break
		}
		fmt.Printf("[shard %d] %s\n", slot, line)
	}
	giveUp.Stop()
	if p.addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("shard %d exited before reporting its address", slot)
	}
	go func() {
		for sc.Scan() {
			fmt.Printf("[shard %d] %s\n", slot, sc.Text())
		}
		cmd.Wait()
		close(p.done)
	}()
	return p, nil
}

// kill delivers SIGKILL — the chaos path: no drain, no flush, the process is
// simply gone. Recovery must work from the durable audit logs alone.
func (p *shardProc) kill() {
	p.cmd.Process.Kill()
	<-p.done
}

// terminate asks for a graceful drain and waits bounded time for it.
func (p *shardProc) terminate() {
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		<-p.done
	}
}

// scrapeShards fetches every live shard's Prometheus exposition from its
// control-plane /metrics endpoint. Unreachable shards are skipped — the
// caller compares the haul against the live count.
func scrapeShards(r *rpc.Router) []obs.Exposition {
	cl := &http.Client{Timeout: 2 * time.Second}
	var out []obs.Exposition
	for _, si := range r.Shards() {
		if !si.Alive {
			continue
		}
		resp, err := cl.Get("http://" + si.Addr + "/metrics")
		if err != nil {
			continue
		}
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		out = append(out, obs.Exposition{Shard: si.Addr, Text: string(b)})
	}
	return out
}

// federate renders the fleet-wide metrics view: the router's own registry
// merged with a live scrape of every shard, shard-labeled.
func federate(r *rpc.Router, tel *obs.Telemetry) string {
	return obs.MergeExpositions(append(
		[]obs.Exposition{{Shard: "router", Text: tel.Reg.Expose()}}, scrapeShards(r)...))
}

// stitchedTrace finds the best single trace that crosses at least two
// processes and contains every stage of the control-plane path: the router's
// round root, the shard-side tick handler, a tenant tick, a controller
// decision stage, and a coalesced inference batch. Returns its trace ID,
// span count, and process count.
func stitchedTrace(spans []obs.TraceSpan) (tid uint64, n, procs int, ok bool) {
	type agg struct {
		names map[string]bool
		procs map[string]bool
		n     int
	}
	byTrace := map[uint64]*agg{}
	for _, s := range spans {
		a := byTrace[s.Trace]
		if a == nil {
			a = &agg{names: map[string]bool{}, procs: map[string]bool{}}
			byTrace[s.Trace] = a
		}
		name := s.Name
		if strings.HasPrefix(name, "decision/") {
			name = "decision"
		}
		a.names[name] = true
		a.procs[s.Proc] = true
		a.n++
	}
	var best *agg
	for id, a := range byTrace {
		full := a.names["router/round"] && a.names["shard/tick"] &&
			a.names["tenant/tick"] && a.names["decision"] &&
			a.names["inference/batch"] && len(a.procs) >= 2
		if full && (best == nil || a.n > best.n) {
			tid, best = id, a
		}
	}
	if best == nil {
		return 0, 0, 0, false
	}
	return tid, best.n, len(best.procs), true
}

// waitForPrimaryFailure blocks until the primary's /v1/router/healthz has
// failed `misses` consecutive probes after having answered at least once,
// and returns the instant of the last successful probe — where the takeover
// blackout clock starts. If the primary never answers within a 60s grace
// (it was already dead when the standby started), leadership is claimed
// immediately.
func waitForPrimaryFailure(primary string, every time.Duration, misses int) time.Time {
	timeout := 2 * every
	if timeout < 100*time.Millisecond {
		timeout = 100 * time.Millisecond
	}
	cl := &http.Client{Timeout: timeout}
	url := "http://" + primary + "/v1/router/healthz"
	grace := time.Now().Add(60 * time.Second)
	lastOK := time.Time{}
	sawHealthy := false
	consecutive := 0
	for {
		resp, err := cl.Get(url)
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		switch {
		case ok:
			sawHealthy, consecutive = true, 0
			lastOK = time.Now()
		case sawHealthy:
			consecutive++
			if consecutive >= misses {
				return lastOK
			}
		case time.Now().After(grace):
			fmt.Fprintln(os.Stderr, "standby: primary never answered within the grace window — claiming leadership")
			return time.Now()
		}
		time.Sleep(every)
	}
}

// parseAt splits "x@round" clauses.
func parseAt(s string) (string, int, error) {
	head, tail, ok := strings.Cut(s, "@")
	if !ok {
		return "", 0, fmt.Errorf("%q: want <target>@<round>", s)
	}
	round, err := strconv.Atoi(tail)
	if err != nil || round <= 0 {
		return "", 0, fmt.Errorf("%q: round %q must be a positive integer", s, tail)
	}
	return head, round, nil
}

func main() {
	o := routerOptions{}
	flag.StringVar(&o.model, "model", "", "trained model from graftrain (shared by every shard)")
	flag.StringVar(&o.appName, "app", "online-boutique", "builtin application graph (online-boutique | social-network | robot-shop | bookinfo | chain-N)")
	flag.StringVar(&o.shape, "shape", "const", "tenant arrival-rate shape: const | surge")
	flag.Float64Var(&o.rate, "rate", 150, "constant rate, or surge base (req/s)")
	flag.Int64Var(&o.seed, "seed", 1, "fleet seed (per-tenant engine seeds derive from it)")
	flag.IntVar(&o.durS, "dur", 600, "simulated duration (s)")
	flag.IntVar(&o.fleetN, "fleet", 8, "tenant count")
	flag.IntVar(&o.spawn, "spawn", 0, "spawn this many grafd -shard child processes")
	flag.StringVar(&o.shards, "shards", "", "attach to running shard processes at these comma-separated addresses (instead of -spawn)")
	flag.StringVar(&o.grafdBin, "grafd-bin", "./grafd", "grafd binary to spawn shards from (with -spawn)")
	flag.StringVar(&o.ckpt, "ckpt", "", "shared checkpoint directory passed to every shard")
	flag.StringVar(&o.auditDir, "audit-dir", "", "shared per-tenant audit mirror directory passed to every shard")
	flag.IntVar(&o.ckptEveryRounds, "ckpt-every-rounds", 0, "checkpoint every shard each N rounds (0 = only at shutdown)")
	flag.IntVar(&o.restartBudget, "restart-budget", 1, "respawns allowed per shard slot before falling back to reassignment (0 = reassign immediately)")
	flag.StringVar(&o.killShard, "kill-shard", "", "chaos: SIGKILL spawned shard <slot> at the start of round <round>, as slot@round (e.g. 0@12)")
	flag.StringVar(&o.migrate, "migrate", "", "planned migration tenant@round:slot (e.g. tenant-03@5:1)")
	flag.Float64Var(&o.netDrop, "net-drop", 0, "chaos: drop each control-plane request with this probability (seeded-deterministic)")
	flag.Float64Var(&o.netDelayMS, "net-delay-ms", 0, "chaos: add this latency to ~30% of control-plane requests")
	flag.Float64Var(&o.roundBudgetMS, "round-budget-ms", 0, "end-to-end wall budget per round; the remaining budget propagates to shards as Graf-Deadline-Ms and over-budget ticks are shed, not retried (0 = unbounded)")
	flag.StringVar(&o.brownout, "brownout", "", "scripted brownout schedule FROM[-TO]:STEP[,...] in ticks, e.g. 12-24:heuristic; installed in every shard via the fleet spec")
	flag.StringVar(&o.trace, "trace", "", "enable control-plane tracing on router and every shard; write the merged Chrome trace-event JSON to this file")
	flag.StringVar(&o.obsAddr, "obs", "", "serve the router's metrics plus a federated fleet-wide /metrics view (every shard's registry relabeled with shard=addr) on this address")
	flag.Float64Var(&o.sloBudget, "slo-budget", 0, "per-tenant SLO error budget as allowed violation fraction (e.g. 0.02); enables multi-window burn-rate telemetry on every shard (0 = off)")
	flag.StringVar(&o.stateDir, "state-dir", "", "durable router state directory: placement, round clock, migration records, and the fencing epoch are checkpointed here (\"\" = in-memory router, no crash safety)")
	flag.BoolVar(&o.resume, "resume", false, "warm-restore the router from -state-dir: bump the fencing epoch, reconcile placement against every shard's reported residency, and continue the round sequence")
	flag.StringVar(&o.routerAddr, "router-addr", "", "serve the router's own /v1/router/healthz on this address (the standby's probe target)")
	flag.StringVar(&o.standby, "standby", "", "run as a hot standby: probe the primary router's /v1/router/healthz at this host:port and take over (epoch bump + reconcile) after sustained failure")
	flag.IntVar(&o.standbyMisses, "standby-misses", 5, "consecutive failed primary probes that trigger the standby's takeover")
	flag.Float64Var(&o.standbyEveryMS, "standby-every-ms", 100, "primary probe interval (ms)")
	flag.BoolVar(&o.crashAfterDrain, "crash-after-drain", false, "drill: self-SIGKILL at the migrate-after-drain crash site — the migrated tenant is resident nowhere, only the durable migration record knows where it was headed")
	flag.IntVar(&o.crashAtRound, "crash-at-round", 0, "drill: self-SIGKILL at the start of this round (0 = never)")
	flag.Parse()

	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "grafrouter: %v\n", err)
		os.Exit(2)
	}
	os.Exit(run(o))
}

func run(o routerOptions) int {
	tr, err := graf.LoadModel(o.model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "load model: %v\n", err)
		return 1
	}
	spec := rpc.Spec{
		App: o.appName, Shape: o.shape, Rate: o.rate,
		Seed: o.seed, TickS: 5, WarmStart: true,
		Trace: o.trace != "",
	}
	if o.sloBudget > 0 {
		// The budget travels in the spec, so every shard — including a
		// respawned one — reconstructs the identical burn-rate monitor.
		spec.SLOBudget = &obs.SLOConfig{Budget: o.sloBudget}
	}
	// Scripted brownout rides the spec for the same reason: every shard —
	// and the single-process reference run — degrades at the same ticks.
	spec.Brownout, _ = rpc.ParseBrownout(o.brownout) // validated in main
	// Fail fast if the artifact cannot realize the spec (wrong service
	// count, bad shape) before any shard process is spawned. The shards
	// load the same file themselves; the router never keeps the model.
	bundle := rpc.ModelBundle{
		Model: tr.Model, Bounds: tr.Bounds, SLO: tr.SLO.Seconds(),
		MinRate: tr.MinRate, MaxRate: tr.MaxRate,
	}
	if _, err := spec.FleetConfig(bundle, ""); err != nil {
		fmt.Fprintf(os.Stderr, "grafrouter: %v\n", err)
		return 2
	}
	rounds := int(float64(o.durS) / spec.TickS)

	// Assemble the shard set: spawned children or external addresses.
	var addrs []string
	var procs []*shardProc // index = slot; nil for external shards
	var procMu sync.Mutex
	if o.spawn > 0 {
		for slot := 0; slot < o.spawn; slot++ {
			p, err := spawnShard(o, slot)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				for _, q := range procs {
					q.kill()
				}
				return 1
			}
			fmt.Printf("router: shard %d up at %s (pid %d)\n", slot, p.addr, p.cmd.Process.Pid)
			procs = append(procs, p)
			addrs = append(addrs, p.addr)
		}
	} else if o.shards != "" {
		addrs = strings.Split(o.shards, ",")
		procs = make([]*shardProc, len(addrs))
	}
	// -resume/-standby: addrs stays empty — the shard set is recorded in the
	// durable state and rebuilt by ResumeRouter.
	takeover := o.resume || o.standby != ""

	// Parse the chaos/migration schedules now that slots exist. Slot "max"
	// resolves at kill time to the spawned shard owning the most tenants —
	// the drill then always has something to recover, whatever the ring
	// happened to decide.
	killSlot, killRound := -1, -1
	const killSlotMax = -2
	if o.killShard != "" {
		slotS, round, err := parseAt(o.killShard)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grafrouter: -kill-shard %v\n", err)
			return 2
		}
		if slotS == "max" {
			killSlot = killSlotMax
		} else {
			slot, err := strconv.Atoi(slotS)
			if err != nil || slot < 0 || slot >= len(addrs) {
				fmt.Fprintf(os.Stderr, "grafrouter: -kill-shard slot %q out of range (0..%d, or \"max\")\n", slotS, len(addrs)-1)
				return 2
			}
			killSlot = slot
		}
		killRound = round
	}
	migTenant, migRound, migSlot := "", -1, -1
	if o.migrate != "" {
		// Format: tenant@round:slot — move `tenant` at the start of `round`
		// onto shard slot `slot`.
		tenant, tail, ok := strings.Cut(o.migrate, "@")
		roundS, slotS, ok2 := strings.Cut(tail, ":")
		round, errR := strconv.Atoi(roundS)
		if !ok || !ok2 || errR != nil || round <= 0 {
			fmt.Fprintf(os.Stderr, "grafrouter: -migrate %q: want tenant@round:slot (e.g. tenant-03@5:1, or :other for any non-owning shard)\n", o.migrate)
			return 2
		}
		if slotS == "other" {
			// Resolved at migration time to a live shard that does not
			// currently own the tenant — the drill is never a no-op.
			migSlot = -2
		} else {
			slot, errS := strconv.Atoi(slotS)
			// A resumed/standby router learns its shard set from the durable
			// state, so the upper bound is checked at migration time instead.
			if errS != nil || slot < 0 || (!takeover && slot >= len(addrs)) {
				fmt.Fprintf(os.Stderr, "grafrouter: -migrate slot %q out of range (0..%d, or \"other\")\n", slotS, len(addrs)-1)
				return 2
			}
			migSlot = slot
		}
		migTenant, migRound = tenant, round
	}

	// The chaos schedule: optional wire faults keyed by the router's round
	// clock and a fixed seed — replayable. (The scripted SIGKILL is driver
	// work, performed in the round loop below.)
	var events []chaos.NetEvent
	if o.netDrop > 0 {
		events = append(events, chaos.Drop(1, rounds, "", o.netDrop))
	}
	if o.netDelayMS > 0 {
		events = append(events, chaos.Delay(1, rounds, "", 0.3, o.netDelayMS))
	}
	var fault rpc.FaultInjector
	if len(events) > 0 {
		fault = chaos.NewNetInjector(chaos.NetScenario{Name: "grafrouter", Seed: o.seed, Events: events})
	}

	// The router's own telemetry (round/migration/recovery metrics plus the
	// client's per-shard RPC histograms) lives in one registry; -obs serves
	// it federated with every shard's scraped registry. -trace adds a tracer
	// whose round-root spans propagate to the shards as traceparent headers.
	tel := obs.New(obs.Options{})
	var tracer *obs.Tracer
	if o.trace != "" {
		tracer = obs.NewTracer(obs.TracerOptions{
			Seed: obs.DeriveTraceSeed(o.seed, "router"), Proc: "router",
		})
	}
	cfg := rpc.RouterConfig{
		Spec:                  spec,
		Client:                rpc.ClientConfig{Seed: o.seed},
		RestartBudget:         o.restartBudget,
		CheckpointEveryRounds: o.ckptEveryRounds,
		Fault:                 fault,
		Obs:                   obs.NewRouterObs(tel),
		RPCObs:                obs.NewRPCObs(tel),
		Tracer:                tracer,
		Logf: func(format string, args ...any) {
			fmt.Printf("router: "+format+"\n", args...)
		},
	}
	if o.roundBudgetMS > 0 {
		cfg.RoundBudget = time.Duration(o.roundBudgetMS * float64(time.Millisecond))
	}
	cfg.StateDir = o.stateDir
	if o.crashAfterDrain {
		// The drill's worst-case crash: SIGKILL ourselves inside the
		// migration window, after the drain, before the restore. No rollback,
		// no cleanup — exactly what the failpoint seam promises. The standby
		// (or a -resume restart) must roll the move forward from the durable
		// migration record.
		cfg.Failpoint = func(site string) error {
			if site == "migrate-after-drain" {
				fmt.Printf("router: CRASH — self-SIGKILL at %s\n", site)
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
			return nil
		}
	}
	if o.restartBudget == 0 {
		cfg.RestartBudget = -1 // reassign immediately, never respawn
	}
	if o.spawn > 0 {
		cfg.Respawn = func(slot int) (string, error) {
			p, err := spawnShard(o, slot)
			if err != nil {
				return "", err
			}
			procMu.Lock()
			procs[slot] = p
			procMu.Unlock()
			fmt.Printf("router: shard %d respawned at %s (pid %d)\n", slot, p.addr, p.cmd.Process.Pid)
			return p.addr, nil
		}
	}
	for i := 0; i < o.fleetN; i++ {
		cfg.Tenants = append(cfg.Tenants, fmt.Sprintf("tenant-%02d", i))
	}

	var r *rpc.Router
	takeoverBlackoutMS := -1.0
	if takeover {
		deadAt := time.Now()
		if o.standby != "" {
			every := time.Duration(o.standbyEveryMS * float64(time.Millisecond))
			if every < 10*time.Millisecond {
				every = 10 * time.Millisecond
			}
			fmt.Printf("standby: probing primary %s every %s (%d misses → takeover)\n",
				o.standby, every, o.standbyMisses)
			deadAt = waitForPrimaryFailure(o.standby, every, o.standbyMisses)
			fmt.Println("standby: primary declared dead — taking over")
		}
		rr, rep, err := rpc.ResumeRouter(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		r = rr
		takeoverBlackoutMS = float64(time.Since(deadAt).Nanoseconds()) / 1e6
		_ = rep // already logged by the reconcile pass through cfg.Logf
		fmt.Printf("router: resumed epoch=%d at round %d/%d, takeover_blackout_ms=%.1f\n",
			r.Epoch(), r.Round(), rounds, takeoverBlackoutMS)
	} else {
		rr, err := rpc.NewRouter(cfg, addrs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		r = rr
	}
	fmt.Printf("router: %d tenants, %d shards, shape=%s, %d rounds (%ds horizon)\n",
		o.fleetN, len(r.Shards()), o.shape, rounds, o.durS)
	if o.routerAddr != "" {
		ln, err := net.Listen("tcp", o.routerAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "router-addr listen: %v\n", err)
			return 1
		}
		rmux := http.NewServeMux()
		rmux.HandleFunc("/v1/router/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(rpc.RouterHealth{
				OK: true, PID: os.Getpid(), Epoch: r.Epoch(), Round: r.Round(), Fenced: r.Fenced(),
			})
		})
		rsrv := &http.Server{Handler: rmux}
		go rsrv.Serve(ln)
		defer rsrv.Close()
		fmt.Printf("router: healthz on %s\n", ln.Addr())
	}
	if o.obsAddr != "" {
		ln, err := net.Listen("tcp", o.obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs listen: %v\n", err)
			return 1
		}
		omux := http.NewServeMux()
		omux.Handle("/debug/", tel.Handler())
		omux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			io.WriteString(w, federate(r, tel))
		})
		srv := &http.Server{Handler: omux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("router: obs listening on %s (federated /metrics)\n", ln.Addr())
	}
	if !takeover {
		if err := r.Bootstrap(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	start := time.Now()
	exit := 0
	prevRung := 0
	for round := r.Round() + 1; round <= rounds; round++ {
		if o.crashAtRound == round {
			fmt.Printf("router: CRASH — self-SIGKILL at round %d\n", round)
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
		if killRound == round {
			slot := killSlot
			if slot == killSlotMax {
				owners := map[string]int{}
				for _, id := range cfg.Tenants {
					owners[r.Owner(id)]++
				}
				best := -1
				for _, si := range r.Shards() {
					if si.Alive && procs[si.Slot] != nil && (best < 0 || owners[si.Addr] > owners[r.Shards()[best].Addr]) {
						best = si.Slot
					}
				}
				slot = best
			}
			procMu.Lock()
			var p *shardProc
			if slot >= 0 {
				p = procs[slot]
			}
			procMu.Unlock()
			if p != nil {
				fmt.Printf("router: CHAOS — SIGKILL shard %d (pid %d) at round %d\n", slot, p.cmd.Process.Pid, round)
				p.kill()
			}
		}
		if migRound == round && migTenant != "" {
			slot := migSlot
			if slot == -2 {
				cur := r.Owner(migTenant)
				for _, si := range r.Shards() {
					if si.Alive && si.Addr != cur {
						slot = si.Slot
						break
					}
				}
			}
			if slot >= len(r.Shards()) {
				fmt.Fprintf(os.Stderr, "migrate: slot %d out of range (%d shards in the restored ring)\n", slot, len(r.Shards()))
				exit = 1
			} else if slot < 0 {
				fmt.Fprintf(os.Stderr, "migrate: no live shard other than %s for %s\n", r.Owner(migTenant), migTenant)
				exit = 1
			} else if d, err := r.Migrate(migTenant, r.Shards()[slot].Addr); err != nil {
				fmt.Fprintf(os.Stderr, "migrate: %v\n", err)
				exit = 1
			} else {
				fmt.Printf("router: migrated %s to shard %d in %.1fms\n", migTenant, slot, float64(d.Nanoseconds())/1e6)
			}
		}
		if err := r.RunRound(); err != nil {
			fmt.Fprintf(os.Stderr, "round %d: %v\n", round, err)
			exit = 1
			break
		}
		// Degradation visibility: announce when any tenant enters the
		// brownout ladder and when the whole fleet has recovered, so an
		// operator tailing the log sees pressure without scraping metrics.
		rung := 0
		for _, ts := range r.TenantStates() {
			if ts.Brownout > rung {
				rung = ts.Brownout
			}
		}
		if rung > 0 && prevRung == 0 {
			fmt.Printf("router: brownout enter step=%s round=%d\n", overload.Step(rung), round)
		} else if rung == 0 && prevRung > 0 {
			fmt.Printf("router: brownout exit round=%d\n", round)
		} else if rung != prevRung {
			fmt.Printf("router: brownout step=%s round=%d\n", overload.Step(rung), round)
		}
		prevRung = rung
	}
	wall := time.Since(start).Seconds()

	if o.ckpt != "" {
		if n, err := r.CheckpointAll(); err != nil {
			fmt.Fprintf(os.Stderr, "final checkpoint: %v\n", err)
		} else {
			fmt.Printf("router: checkpointed %d tenant namespace(s)\n", n)
		}
	}

	// Per-tenant verdicts: every live tenant must have reached the round
	// clock with its audit fingerprint intact.
	ticksDone := 0
	behind := 0
	for _, ts := range r.TenantStates() {
		ticksDone += ts.Ticks
		status := "ok"
		switch {
		case ts.Degraded:
			status = "DEGRADED (contained)"
		case ts.Ticks != r.Round():
			status = fmt.Sprintf("BEHIND (%d/%d ticks)", ts.Ticks, r.Round())
			behind++
		}
		if ts.Brownout > 0 {
			status += fmt.Sprintf(" brownout=%s", overload.Step(ts.Brownout))
		}
		fmt.Printf("  %-12s on %-21s ticks %3d  p99 %6.1f ms  violation %5.1fs  audit %6dB fnv %016x  %s\n",
			ts.ID, r.Owner(ts.ID), ts.Ticks, ts.P99*1000, ts.ViolS, ts.AuditLen, ts.AuditFNV, status)
	}

	st := r.Stats()
	if st.LostDecisions > 0 || behind > 0 {
		exit = 1
	}
	// Aggregate the shards' overload counters from their health endpoints:
	// shed work is accounted loudly, and expired_executed must be zero —
	// a shard that ran work past its propagated deadline broke the contract.
	var shardShed, expiredShed, expiredExecuted, fencedAccepted, fencedRejected int64
	for _, si := range r.Shards() {
		if !si.Alive {
			continue
		}
		if h, err := r.Client().Health(si.Addr); err == nil {
			shardShed += h.Shed
			expiredShed += h.ExpiredShed
			expiredExecuted += h.ExpiredExecuted
			fencedAccepted += h.FencedAccepted
			fencedRejected += h.FencedRejected
		}
	}
	if expiredExecuted > 0 {
		fmt.Fprintf(os.Stderr, "overload: %d requests EXECUTED past their propagated deadline\n", expiredExecuted)
		exit = 1
	}
	if fencedAccepted > 0 {
		fmt.Fprintf(os.Stderr, "fencing: %d stale-epoch mutations EXECUTED on a shard\n", fencedAccepted)
		exit = 1
	}
	if r.Fenced() {
		fmt.Fprintln(os.Stderr, "fencing: this router generation was FENCED (a newer epoch owns the fleet)")
		exit = 1
	}
	fmt.Printf("router done: rounds=%d ticks=%d wall=%.1fs ticks_per_s=%.1f lost_decisions=%d migrations=%d respawns=%d reassignments=%d verified_restores=%d snapshot_verified=%d replayed_ticks=%d recovery_blackout_ms=%.1f shed_ticks=%d partial_rounds=%d shard_shed=%d expired_shed=%d expired_executed=%d epoch=%d persist_errors=%d fenced_writes_accepted=%d fenced_writes_rejected=%d\n",
		st.Rounds, ticksDone, wall, float64(ticksDone)/wall,
		st.LostDecisions, st.Migrations, st.Respawns, st.Reassignments,
		st.VerifiedRestores, st.SnapshotVerified, st.ReplayedTicks, st.RecoveryBlackoutMS,
		st.ShedTicks, st.PartialRounds, shardShed, expiredShed, expiredExecuted,
		r.Epoch(), st.PersistErrors, fencedAccepted, fencedRejected)
	if takeoverBlackoutMS >= 0 {
		fmt.Printf("takeover_blackout_ms=%.1f\n", takeoverBlackoutMS)
	}
	for i, ms := range st.MigrationBlackouts {
		fmt.Printf("migration_blackout_ms=%.2f (migration %d)\n", ms, i)
	}

	// Federation check: scrape every live shard's /metrics (served on its
	// control-plane mux) and merge with the router's own registry, each
	// sample relabeled with shard=addr. Must happen before the drain below
	// kills the endpoints.
	if o.obsAddr != "" {
		shardExpos := scrapeShards(r)
		merged := obs.MergeExpositions(append(
			[]obs.Exposition{{Shard: "router", Text: tel.Reg.Expose()}}, shardExpos...))
		alive := 0
		for _, si := range r.Shards() {
			if si.Alive {
				alive++
			}
		}
		if len(shardExpos) == alive && alive > 0 {
			fmt.Printf("federation OK: %d shards merged, %d metric families\n",
				len(shardExpos), strings.Count(merged, "# TYPE "))
		} else {
			fmt.Fprintf(os.Stderr, "federation INCOMPLETE: scraped %d of %d live shards\n", len(shardExpos), alive)
			exit = 1
		}
	}

	// Trace assembly: pull every live shard's span buffer over /v1/traces,
	// merge with the router's own spans, verify that one trace stitches the
	// whole control-plane path across processes, and export Chrome JSON.
	if o.trace != "" {
		spans := tracer.Snapshot()
		procs := 1
		for _, si := range r.Shards() {
			if !si.Alive {
				continue
			}
			resp, err := r.Client().Traces(si.Addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "traces from %s: %v\n", si.Addr, err)
				exit = 1
				continue
			}
			spans = append(spans, resp.Spans...)
			procs++
		}
		if tid, n, np, ok := stitchedTrace(spans); ok {
			fmt.Printf("trace stitched: trace %016x crosses %d processes, %d spans (router/round → shard/tick → tenant/tick → decision → inference/batch)\n",
				tid, np, n)
		} else {
			fmt.Fprintf(os.Stderr, "trace NOT stitched: no single trace covers router round → shard tick → tenant stages → batched inference\n")
			exit = 1
		}
		f, err := os.Create(o.trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
			exit = 1
		} else {
			if err := obs.ChromeTrace(f, spans); err != nil {
				fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
				exit = 1
			}
			f.Close()
			fmt.Printf("router: %d spans from %d processes written to %s\n", len(spans), procs, o.trace)
		}
	}

	// Drain spawned shards: SIGTERM flushes + checkpoints each one.
	procMu.Lock()
	for _, p := range procs {
		if p != nil {
			select {
			case <-p.done: // already dead (chaos)
			default:
				p.terminate()
			}
		}
	}
	procMu.Unlock()
	if o.auditDir != "" {
		fmt.Printf("audit logs written to %s\n", o.auditDir)
	}
	return exit
}
