// Command graftrain runs GRAF's offline path — Algorithm 1 search-space
// reduction, state-aware sample collection, and latency-model training —
// and persists the trained model for grafd or library use.
//
// Usage:
//
//	graftrain -app boutique -o boutique.graf
//	graftrain -app social -samples 20000 -iters 8000 -o social.graf
//	graftrain -app boutique -sim-labels -samples 2000 -o exact.graf
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graf"
)

func main() {
	appName := flag.String("app", "boutique", "builtin application (online-boutique | social-network | robot-shop | bookinfo | chain-N; legacy short names accepted)")
	out := flag.String("o", "model.graf", "output path for the trained model")
	sloMS := flag.Int("slo", 250, "latency SLO in milliseconds")
	minRate := flag.Float64("min-rate", 40, "lowest total frontend rate covered (req/s)")
	maxRate := flag.Float64("max-rate", 320, "highest total frontend rate covered (req/s)")
	samples := flag.Int("samples", 4000, "training samples to collect")
	iters := flag.Int("iters", 1600, "training iterations")
	batch := flag.Int("batch", 128, "batch size")
	simLabels := flag.Bool("sim-labels", false, "label every sample with a discrete-event measurement (slow, exact)")
	full := flag.Bool("full", false, "paper-scale budget: 50k samples, 20k iterations (hours of CPU)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	a, err := graf.AppByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *full {
		*samples, *iters, *batch = 50000, 20000, 256
	}

	fmt.Printf("training GRAF latency model for %s: %d samples, %d iterations (batch %d)\n",
		a.Name, *samples, *iters, *batch)
	start := time.Now()
	tr := graf.Train(a, graf.TrainOptions{
		SLO:             time.Duration(*sloMS) * time.Millisecond,
		MinRate:         *minRate,
		MaxRate:         *maxRate,
		Samples:         *samples,
		Iterations:      *iters,
		Batch:           *batch,
		SimulatorLabels: *simLabels,
		Seed:            *seed,
	})
	fmt.Printf("trained in %.1fs\n", time.Since(start).Seconds())
	for i, name := range a.ServiceNames() {
		fmt.Printf("  %-16s search space [%4.0f, %4.0f] mc\n", name, tr.Bounds.Lo[i], tr.Bounds.Hi[i])
	}
	if err := tr.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "save: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("model written to %s\n", *out)
}
