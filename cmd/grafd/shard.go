package main

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"graf"
	"graf/internal/obs"
	"graf/internal/overload"
	"graf/internal/rpc"
)

// runShard turns this grafd process into one member of a multi-process
// fleet: it serves the control-plane protocol on -shard's address and waits
// for a grafrouter to install the fleet spec, admit tenants, and drive
// rounds. The process holds no configuration of its own beyond the model
// artifact and the shared -ckpt/-audit-dir stores — everything that varies
// per run arrives over the wire, so any shard process can own any tenant.
//
// The first stdout line is machine-parsed by grafrouter's spawner:
//
//	shard listening on HOST:PORT
//
// SIGTERM/SIGINT drains the shard (flush audit, checkpoint every tenant,
// stop the fleet) before exiting; a SIGKILL — the chaos case — leaves the
// durable audit logs behind, which is all recovery needs.
func runShard(tr *graf.TrainedModel, o options) int {
	// The shard's telemetry rides the control-plane mux — /metrics,
	// /debug/vars, and /debug/pprof/* on the same listener the router
	// already talks to, so there is no separate -obs port to configure
	// (and -obs is rejected in shard mode for exactly that reason). The
	// router scrapes this endpoint to federate a fleet-wide metrics view.
	s := &rpc.ShardServer{
		Bundle:      fleetBundle(tr),
		CkptDir:     o.ckpt,
		AuditDir:    o.auditDir,
		MaxInflight: o.maxInflight,
		Tel:         obs.New(obs.Options{}),
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	if o.governorBudgetMS > 0 {
		// Adaptive brownout lives shard-side (scripted schedules arrive in
		// the router's spec instead): the governor watches this shard's own
		// round wall clock and walks its tenants down the ladder when rounds
		// run past the budget.
		s.Governor = &overload.GovernorConfig{BudgetMS: o.governorBudgetMS}
	}
	addr, err := s.Serve(o.shardAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard listen: %v\n", err)
		return 1
	}
	fmt.Printf("shard listening on %s\n", addr)

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	sig := <-sigC
	fmt.Printf("%v: draining\n", sig)
	if err := s.Shutdown(); err != nil {
		fmt.Fprintf(os.Stderr, "shard shutdown: %v\n", err)
		return 1
	}
	return 0
}
