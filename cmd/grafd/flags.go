package main

import (
	"errors"
	"fmt"

	"graf/internal/rpc"
)

// options is the parsed command line, gathered so contradictory flag
// combinations are rejected before any training, file, or simulation work
// starts. A daemon that runs 600 simulated seconds and then silently ignores
// half its flags wastes a CI cycle; failing fast costs nothing.
type options struct {
	train bool
	model string

	appName string
	shape   string
	rate    float64
	sloMS   int
	durS    int

	obs   string
	audit string
	hold  int
	smoke bool

	replay string

	ckpt          string
	ckptEvery     float64
	cold          bool
	crashAt       float64
	assertRestore bool

	lifecycle    bool
	modelArchive string

	fleetN    int
	shards    int
	auditDir  string
	sloBudget float64
	brownout  string

	shardAddr        string
	maxInflight      int
	governorBudgetMS float64

	forecast     string
	horizonTicks int
	fcQuantile   float64
}

// validate returns the first contradiction it finds, phrased so the fix is
// obvious.
func (o options) validate() error {
	if !o.train && o.model == "" {
		return errors.New("need -model <path> or -train")
	}
	if o.train && o.model != "" {
		return errors.New("-train and -model are mutually exclusive: train in-process or load a file, not both")
	}
	switch o.shape {
	case "const", "surge", "azure", "diurnal":
	default:
		return fmt.Errorf("unknown -shape %q (const | surge | azure | diurnal)", o.shape)
	}
	if o.rate <= 0 {
		return fmt.Errorf("-rate %v must be positive", o.rate)
	}
	if o.sloMS <= 0 {
		return fmt.Errorf("-slo %v ms must be positive", o.sloMS)
	}
	if o.durS <= 0 {
		return fmt.Errorf("-dur %v s must be positive", o.durS)
	}

	if o.fleetN < 0 {
		return fmt.Errorf("-fleet %d must be positive", o.fleetN)
	}
	if o.shards < 0 {
		return fmt.Errorf("-shards %d must be positive", o.shards)
	}
	if o.shardAddr != "" {
		// Shard mode turns grafd into one control-plane member process:
		// grafrouter installs the fleet spec over HTTP, so every local mode
		// selector contradicts it.
		if o.fleetN > 0 {
			return errors.New("-shard serves one shard of a routed fleet and -fleet runs a whole fleet in-process: pick one")
		}
		if o.train {
			return errors.New("-shard processes must load the same -model artifact; -train would give every shard a different model")
		}
		for _, c := range []struct {
			set  bool
			flag string
		}{
			{o.shards > 0, "-shards"},
			{o.replay != "", "-replay"},
			{o.crashAt > 0, "-crash-at"},
			{o.assertRestore, "-assert-restore"},
			{o.cold, "-cold"},
			{o.lifecycle, "-lifecycle"},
			{o.audit != "", "-audit"},
			{o.obs != "", "-obs"},
			{o.smoke, "-smoke"},
			{o.hold > 0, "-hold"},
			{o.brownout != "", "-brownout"},
		} {
			if c.set {
				return fmt.Errorf("%s drives a local run; a -shard process takes its fleet spec from the router (only -ckpt and -audit-dir apply)", c.flag)
			}
		}
	}
	if o.auditDir != "" && o.fleetN == 0 && o.shardAddr == "" {
		return errors.New("-audit-dir mirrors per-tenant fleet audit logs; it needs -fleet or -shard (single-tenant runs use -audit <file>)")
	}
	if o.fleetN > 0 {
		// Fleet mode runs many tenant simulations in one process; the
		// single-tenant modes below have no meaning there.
		if o.replay != "" {
			return errors.New("-fleet runs a live fleet and -replay verifies a recorded log: pick one")
		}
		if o.shards > o.fleetN {
			return fmt.Errorf("-shards %d exceeds the fleet's %d tenants: shards must not be empty", o.shards, o.fleetN)
		}
		if o.shape != "const" && o.shape != "surge" {
			return fmt.Errorf("-shape %s is a single-tenant shape; fleet tenants drive (const | surge)", o.shape)
		}
		for _, c := range []struct {
			set  bool
			flag string
		}{
			{o.crashAt > 0, "-crash-at"},
			{o.assertRestore, "-assert-restore"},
			{o.cold, "-cold"},
			{o.lifecycle, "-lifecycle"},
			{o.audit != "", "-audit"},
			{o.obs != "", "-obs"},
			{o.smoke, "-smoke"},
			{o.hold > 0, "-hold"},
		} {
			if c.set {
				return fmt.Errorf("%s supervises the single-tenant daemon; it is not available with -fleet (fleet telemetry lives in -audit-dir and checkpoints in -ckpt)", c.flag)
			}
		}
	} else if o.shards > 0 {
		return errors.New("-shards groups a fleet's tenants; it needs -fleet")
	}
	if o.sloBudget < 0 || o.sloBudget >= 1 {
		return fmt.Errorf("-slo-budget %v must be in [0,1) (fraction of time allowed in violation; 0 disables)", o.sloBudget)
	}
	if o.sloBudget > 0 && o.fleetN == 0 {
		return errors.New("-slo-budget enables the fleet's per-tenant burn-rate monitor; it needs -fleet (shard processes take the budget from the router's spec)")
	}
	if o.brownout != "" {
		if o.fleetN == 0 {
			return errors.New("-brownout scripts the fleet's degradation ladder; it needs -fleet (shard processes take the schedule from the router's spec)")
		}
		if _, err := rpc.ParseBrownout(o.brownout); err != nil {
			return fmt.Errorf("-brownout: %v", err)
		}
	}
	if o.maxInflight < 0 {
		return fmt.Errorf("-max-inflight %d must be non-negative", o.maxInflight)
	}
	if o.maxInflight > 0 && o.shardAddr == "" {
		return errors.New("-max-inflight bounds a shard's control-plane admission gate; it needs -shard")
	}
	if o.governorBudgetMS < 0 {
		return fmt.Errorf("-governor-budget-ms %v must be non-negative", o.governorBudgetMS)
	}
	if o.governorBudgetMS > 0 && o.shardAddr == "" {
		return errors.New("-governor-budget-ms runs a shard's adaptive brownout governor; it needs -shard")
	}

	switch o.forecast {
	case "", "hw", "ar", "naive":
	default:
		return fmt.Errorf("unknown -forecast model %q (hw | ar | naive)", o.forecast)
	}
	if o.forecast != "" {
		// The forecaster rides inside one live single-tenant controller;
		// offline replay runs no controller at all, and the multi-process
		// modes build theirs from the router's fleet spec.
		if o.replay != "" {
			return errors.New("-replay verifies a recorded log without running a simulation; -forecast configures a live controller")
		}
		if o.fleetN > 0 {
			return errors.New("-forecast runs the single-tenant controller's workload predictor; it is not available with -fleet")
		}
		if o.shardAddr != "" {
			return errors.New("-forecast configures a local run; a -shard process takes its fleet spec from the router")
		}
	}
	if o.horizonTicks < 0 {
		return fmt.Errorf("-horizon-ticks %d must be non-negative (0 auto-sizes to the startup curve)", o.horizonTicks)
	}
	if o.horizonTicks > 0 && o.forecast == "" {
		return errors.New("-horizon-ticks sizes the forecast horizon; it needs -forecast")
	}
	if o.fcQuantile != 0 {
		if o.forecast == "" {
			return errors.New("-forecast-quantile risk-adjusts the forecast; it needs -forecast")
		}
		if o.fcQuantile <= 0 || o.fcQuantile >= 1 {
			return fmt.Errorf("-forecast-quantile %v must be in (0,1): it is the probability the planned rate covers the realized one", o.fcQuantile)
		}
	}

	if o.replay != "" {
		// Replay is an offline verification pass over a recorded log: no
		// simulation runs, so every live-run flag would be silently dead.
		for _, c := range []struct {
			set  bool
			flag string
		}{
			{o.ckpt != "", "-ckpt"},
			{o.crashAt > 0, "-crash-at"},
			{o.assertRestore, "-assert-restore"},
			{o.cold, "-cold"},
			{o.audit != "", "-audit"},
			{o.obs != "", "-obs"},
			{o.smoke, "-smoke"},
			{o.hold > 0, "-hold"},
			{o.lifecycle, "-lifecycle"},
		} {
			if c.set {
				return fmt.Errorf("-replay verifies a recorded log without running a simulation; %s has no effect there", c.flag)
			}
		}
	}

	if o.ckpt == "" {
		for _, c := range []struct {
			set  bool
			flag string
		}{
			{o.crashAt > 0, "-crash-at"},
			{o.assertRestore, "-assert-restore"},
			{o.cold, "-cold"},
		} {
			if c.set {
				return fmt.Errorf("%s requires -ckpt: without a checkpoint store there is nothing to restore", c.flag)
			}
		}
	}
	if o.ckptEvery <= 0 {
		return fmt.Errorf("-ckpt-every %v must be positive", o.ckptEvery)
	}
	if o.crashAt > 0 && o.crashAt >= float64(o.durS) {
		return fmt.Errorf("-crash-at %v lands at or after the end of the run (-dur %d)", o.crashAt, o.durS)
	}

	if o.obs == "" {
		if o.smoke {
			return errors.New("-smoke scrapes the daemon's own /metrics endpoint and needs -obs")
		}
		if o.hold > 0 {
			return errors.New("-hold keeps the -obs endpoints alive; it needs -obs")
		}
	}

	if o.modelArchive != "" && !o.lifecycle {
		return errors.New("-model-archive stores lifecycle model generations; it needs -lifecycle")
	}
	return nil
}
