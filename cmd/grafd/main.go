// Command grafd runs the GRAF controller live against a simulated cluster
// and streams its decisions: the closest thing to deploying GRAF on a real
// Kubernetes cluster that an offline reproduction can offer. Load follows a
// configurable shape (constant, surge, or the Azure-style trace of Fig 20),
// and each line shows the front-end workload, the controller's solve, and
// the measured tail latency.
//
// Usage:
//
//	grafd -model boutique.graf                 # constant 150 rps
//	grafd -model boutique.graf -shape surge    # 50→300 rps at t=120s
//	grafd -model boutique.graf -shape azure    # trace replay
//	grafd -train                               # train a quick model first
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graf"
	"graf/internal/azure"
	"graf/internal/workload"
)

func main() {
	modelPath := flag.String("model", "", "trained model from graftrain (omit with -train)")
	train := flag.Bool("train", false, "train a quick model in-process instead of loading one")
	shape := flag.String("shape", "const", "const | surge | azure")
	rate := flag.Float64("rate", 150, "constant-shape rate (req/s)")
	sloMS := flag.Int("slo", 250, "latency SLO (ms)")
	durS := flag.Int("dur", 600, "simulated duration (s)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	a := graf.OnlineBoutique()
	var tr *graf.TrainedModel
	switch {
	case *train:
		fmt.Println("training a quick in-process model (use graftrain for a better one)...")
		tr = graf.Train(a, graf.TrainOptions{
			SLO:     time.Duration(*sloMS) * time.Millisecond,
			MinRate: 40, MaxRate: 320,
			Samples: 1500, Iterations: 600, Batch: 96, Seed: *seed,
		})
	case *modelPath != "":
		var err error
		tr, err = graf.LoadModel(*modelPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load model: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -model <path> or -train")
		os.Exit(2)
	}

	s := graf.NewSimulation(a, *seed)
	slo := time.Duration(*sloMS) * time.Millisecond
	ctl, err := s.StartGRAF(tr, slo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctl.OnDecision = func(t float64, total float64, sol graf.Solution) {
		fmt.Printf("[%6.0fs] solve: frontend %.0f rps → total quota %.0f mc (predicted p99 %.0f ms, %d iters)\n",
			t, total, sol.TotalQuota, sol.Predicted*1000, sol.Iterations)
	}

	var gen interface{ Start() }
	switch *shape {
	case "const":
		gen = s.OpenLoop(graf.ConstRate(*rate))
	case "surge":
		gen = s.OpenLoop(graf.StepRate(50, 300, 120*time.Second))
	case "azure":
		trace := azure.Generate(azure.DefaultTrace())
		gen = s.ClosedLoop(workload.TraceUsers(trace, 24))
	default:
		fmt.Fprintf(os.Stderr, "unknown shape %q\n", *shape)
		os.Exit(2)
	}
	gen.Start()

	for t := 30; t <= *durS; t += 30 {
		s.RunFor(30 * time.Second)
		fmt.Printf("[%6.0fs] status: %3d instances, %6.0f mc, p99 %6.1f ms (SLO %d ms)\n",
			s.Engine.Now(), s.Cluster.TotalInstances(), s.Cluster.TotalRealizedQuota(),
			float64(s.P99(30*time.Second))/float64(time.Millisecond), *sloMS)
	}
}
