// Command grafd runs the GRAF controller live against a simulated cluster
// and streams its decisions: the closest thing to deploying GRAF on a real
// Kubernetes cluster that an offline reproduction can offer. Load follows a
// configurable shape (constant, surge, or the Azure-style trace of Fig 20),
// and each line shows the front-end workload, the controller's solve, and
// the measured tail latency.
//
// Usage:
//
//	grafd -model boutique.graf                 # constant 150 rps
//	grafd -model boutique.graf -shape surge    # 50→300 rps at t=120s
//	grafd -model boutique.graf -shape azure    # trace replay
//	grafd -train                               # train a quick model first
//
// Observability:
//
//	grafd -train -obs 127.0.0.1:9090           # /metrics, /debug/vars, /debug/pprof/*
//	grafd -train -audit run.jsonl              # flight-recorder audit log
//	grafd -model m.graf -replay run.jsonl      # verify a recorded log replays bit-identically
//
// Crash recovery:
//
//	grafd -model m.graf -ckpt state            # supervised: checkpoint every 20 s of sim time
//	grafd -model m.graf -ckpt state -crash-at 100   # die abruptly at t=100s (exit 42)
//	grafd -model m.graf -ckpt state -audit run.jsonl -assert-restore
//	                                           # restart: warm-restore from the latest
//	                                           # snapshot + audit tail, assert state survived
//
// Fleet mode:
//
//	grafd -train -fleet 8 -dur 120            # 8 tenants, shared batched inference
//	grafd -train -fleet 8 -shards 4 -dur 120  # pin the shard count
//
// grafd shuts down gracefully on SIGINT/SIGTERM: the control loop stops, the
// audit log is flushed with a final summary record, and the degraded-mode
// statistics are printed.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graf"
	"graf/internal/azure"
	"graf/internal/forecast"
	"graf/internal/workload"
)

// diurnalPeriodS is the -shape diurnal cycle length: compressed enough that
// a default 600 s run traverses the cycle twice after the forecaster's one
// warm-up period, long enough that the climb outpaces reactive scaling.
const diurnalPeriodS = 240.0

func main() {
	modelPath := flag.String("model", "", "trained model from graftrain (omit with -train)")
	train := flag.Bool("train", false, "train a quick model in-process instead of loading one")
	shape := flag.String("shape", "const", "const | surge | azure")
	rate := flag.Float64("rate", 150, "constant-shape rate (req/s)")
	sloMS := flag.Int("slo", 250, "latency SLO (ms)")
	durS := flag.Int("dur", 600, "simulated duration (s)")
	seed := flag.Int64("seed", 1, "random seed")
	obsAddr := flag.String("obs", "", "serve /metrics, /debug/vars and /debug/pprof/* on this address (e.g. 127.0.0.1:9090)")
	auditPath := flag.String("audit", "", "write the flight-recorder audit log (JSONL) to this file")
	replayPath := flag.String("replay", "", "replay a recorded audit log against the model and verify bit-identical decisions (no simulation)")
	holdS := flag.Int("hold", 0, "keep serving -obs endpoints this many wall-clock seconds after the run")
	smoke := flag.Bool("smoke", false, "self-scrape -obs /metrics after the run and verify expected families (CI smoke test)")
	ckptDir := flag.String("ckpt", "", "run supervised with crash-safe checkpoints in this directory; resumes from the latest valid snapshot")
	ckptEveryS := flag.Float64("ckpt-every", 20, "checkpoint cadence in simulated seconds (with -ckpt)")
	cold := flag.Bool("cold", false, "with -ckpt: ignore existing snapshots and restart the controller cold")
	crashAt := flag.Float64("crash-at", 0, "die abruptly (exit 42) at this simulated time — leaves a torn audit tail for the recovery smoke test")
	assertRestore := flag.Bool("assert-restore", false, "with -ckpt: exit non-zero unless the boot warm-restored controller state and quotas from a snapshot")
	lifecycleOn := flag.Bool("lifecycle", false, "run the model-trust lifecycle: drift detection, heuristic fallback, shadow retraining, gated canary promotion, rollback")
	modelDir := flag.String("model-archive", "", "with -lifecycle: persist every model generation into this directory as GRAFMDL1 files")
	fleetN := flag.Int("fleet", 0, "run a sharded multi-tenant fleet of this many tenant applications sharing one batched inference service")
	shards := flag.Int("shards", 0, "with -fleet: number of deterministic tenant shards (default: one per worker)")
	appName := flag.String("app", "online-boutique", "builtin application graph (online-boutique | social-network | robot-shop | bookinfo | chain-N)")
	auditDir := flag.String("audit-dir", "", "with -fleet or -shard: mirror every tenant's audit log into this directory (torn tails are repaired at startup)")
	shardAddr := flag.String("shard", "", "serve one control-plane shard on this address (host:port; port 0 picks one) and wait for a grafrouter to install the fleet spec")
	sloBudget := flag.Float64("slo-budget", 0, "with -fleet: per-tenant SLO error budget as allowed violation fraction (e.g. 0.02); enables multi-window burn-rate telemetry (0 = off)")
	brownout := flag.String("brownout", "", "with -fleet: scripted brownout schedule FROM[-TO]:STEP[,...] in ticks, e.g. 12-24:heuristic (STEP: full | warm | heuristic | hold)")
	maxInflight := flag.Int("max-inflight", 0, "with -shard: admission-gate bound on concurrently executing control-plane requests (0 = default)")
	governorBudgetMS := flag.Float64("governor-budget-ms", 0, "with -shard: defend this per-round wall budget with the adaptive brownout governor (0 = off)")
	fcModel := flag.String("forecast", "", "scale ahead of the surge: plan quotas on a forecasted workload rate (hw | ar | naive)")
	horizonTicks := flag.Int("horizon-ticks", 0, "with -forecast: decision intervals to forecast ahead (0 auto-sizes to the startup curve)")
	fcQuantile := flag.Float64("forecast-quantile", 0, "with -forecast: plan against this quantile of the forecast's residual spread (0 = default 0.95)")
	flag.Parse()

	opts := options{
		train: *train, model: *modelPath, shape: *shape, rate: *rate,
		sloMS: *sloMS, durS: *durS, obs: *obsAddr, audit: *auditPath,
		replay: *replayPath, hold: *holdS, smoke: *smoke,
		ckpt: *ckptDir, ckptEvery: *ckptEveryS, cold: *cold,
		crashAt: *crashAt, assertRestore: *assertRestore,
		lifecycle: *lifecycleOn, modelArchive: *modelDir,
		fleetN: *fleetN, shards: *shards,
		appName: *appName, auditDir: *auditDir, shardAddr: *shardAddr,
		sloBudget: *sloBudget, brownout: *brownout,
		maxInflight: *maxInflight, governorBudgetMS: *governorBudgetMS,
		forecast: *fcModel, horizonTicks: *horizonTicks, fcQuantile: *fcQuantile,
	}
	if err := opts.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "grafd: %v\n", err)
		os.Exit(2)
	}

	a, err := graf.AppByName(opts.appName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grafd: %v\n", err)
		os.Exit(2)
	}
	var tr *graf.TrainedModel
	switch {
	case *train:
		fmt.Println("training a quick in-process model (use graftrain for a better one)...")
		tr = graf.Train(a, graf.TrainOptions{
			SLO:     time.Duration(*sloMS) * time.Millisecond,
			MinRate: 40, MaxRate: 320,
			Samples: 1500, Iterations: 600, Batch: 96, Seed: *seed,
		})
	case *modelPath != "":
		var err error
		tr, err = graf.LoadModel(*modelPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load model: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -model <path> or -train")
		os.Exit(2)
	}

	if *replayPath != "" {
		os.Exit(replay(tr, *replayPath))
	}

	if *shardAddr != "" {
		os.Exit(runShard(tr, opts))
	}

	if *fleetN > 0 {
		os.Exit(runFleet(tr, opts, *seed))
	}

	s := graf.NewSimulation(a, *seed)

	// Crash recovery: before the audit file is re-opened, salvage the
	// previous process's decision tail — the records after its last
	// checkpoint. A crash mid-append leaves a torn final line;
	// RepairAuditLog returns the valid prefix and truncates the tear off
	// the file, so the append that follows keeps the log parseable across
	// any number of crash/restart cycles.
	var priorAudit []graf.AuditRecord
	if *ckptDir != "" && !*cold && *auditPath != "" {
		if _, err := os.Stat(*auditPath); err == nil {
			recs, repaired, rerr := graf.RepairAuditLog(*auditPath)
			switch {
			case rerr != nil:
				fmt.Fprintf(os.Stderr, "prior audit log unusable (%v); warm restore will use the snapshot alone\n", rerr)
			case repaired:
				fmt.Printf("prior audit log ended in a torn record (crash mid-append); recovered %d records\n", len(recs))
				priorAudit = recs
			default:
				priorAudit = recs
			}
		}
	}

	// Observability: attach the telemetry bundle before the controller
	// starts so the header record and every decision land in the log.
	var audit *os.File
	needObs := *obsAddr != "" || *auditPath != ""
	var tel *graf.Observability
	if needObs {
		cfg := graf.ObservabilityConfig{}
		if *auditPath != "" {
			var err error
			if *ckptDir != "" {
				// A supervised daemon appends across restarts: the audit log
				// is one continuous recording of the run, crashes included.
				audit, err = os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			} else {
				audit, err = os.Create(*auditPath)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "audit log: %v\n", err)
				os.Exit(1)
			}
			cfg.AuditW = audit
			cfg.AuditMemory = 4096
		}
		tel = s.EnableObservability(cfg)
	}
	var srv *http.Server
	if *obsAddr != "" {
		var err error
		srv, err = tel.Serve(*obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("observability: http://%s/metrics /debug/vars /debug/pprof/\n", srv.Addr)
	}

	slo := time.Duration(*sloMS) * time.Millisecond
	ccfg := graf.DefaultControllerConfig(slo)
	if opts.forecast != "" {
		fc := graf.ForecastConfig{
			Enabled:      true,
			Model:        opts.forecast,
			HorizonTicks: opts.horizonTicks,
			Quantile:     opts.fcQuantile,
		}
		if opts.shape == "diurnal" {
			// Match the seasonal period to the shape so Holt-Winters learns
			// the actual cycle rather than an aliased one.
			fc.PeriodTicks = int(diurnalPeriodS / ccfg.IntervalS)
		}
		if fc.HorizonTicks == 0 {
			// Auto-size to the Figure-1 startup curve: far enough ahead that
			// a typical pre-warm batch is ready when the forecasted rate
			// arrives.
			fc.HorizonTicks = forecast.HorizonForStartup(
				s.Cluster.Cfg.StartupBaseS, s.Cluster.Cfg.StartupSlopeS, 4, ccfg.IntervalS)
		}
		ccfg.Forecast = fc
		q := fc.Quantile
		if q == 0 {
			q = 0.95
		}
		fmt.Printf("forecast: model=%s horizon=%d ticks quantile=%.2f\n", fc.Model, fc.HorizonTicks, q)
	}
	tune := func(ctl *graf.Controller) {
		ctl.OnDecision = func(t float64, total float64, sol graf.Solution) {
			fmt.Printf("[%6.0fs] solve: frontend %.0f rps → total quota %.0f mc (predicted p99 %.0f ms, %d iters)\n",
				t, total, sol.TotalQuota, sol.Predicted*1000, sol.Iterations)
		}
		ctl.OnHealth = func(t float64, from, to graf.HealthState) {
			fmt.Printf("[%6.0fs] health: %s → %s\n", t, from, to)
		}
		ctl.OnPrewarm = func(t float64, n int, leadS, readyS float64) {
			fmt.Printf("[%6.0fs] pre-warm: +%d instances ordered %.0fs ahead of forecasted demand (batch ready in %.1fs)\n",
				t, n, leadS, readyS)
		}
	}
	// The model-trust lifecycle watches the predictor's live residuals and
	// retrains/promotes/rolls back autonomously; grafd narrates its events.
	var lc *graf.Lifecycle
	if *lifecycleOn {
		lc = s.NewLifecycle(tr, graf.LifecycleOptions{
			Dir: *modelDir,
			OnEvent: func(at time.Duration, kind, detail string) {
				fmt.Printf("[%6.0fs] lifecycle %s: %s\n", at.Seconds(), kind, detail)
			},
		})
		if len(tr.Samples) == 0 {
			fmt.Println("lifecycle: model file carries no training samples; retraining will use live telemetry only")
		}
	}

	var ctl *graf.Controller
	var sup *graf.Supervisor
	if *ckptDir != "" {
		// Supervised mode: resume the previous process's run from the
		// latest valid snapshot (simulated clock, cluster scaling state),
		// then boot the controller under the supervisor, which restores its
		// decision state from the same snapshot and folds the salvaged
		// audit tail on top.
		if !*cold {
			resumed, err := s.ResumeFromCheckpoint(*ckptDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "resume from checkpoint: %v\n", err)
				os.Exit(1)
			}
			if resumed {
				fmt.Printf("resumed cluster state from checkpoint at t=%.0fs (%d instances, %.0f mc)\n",
					s.Engine.Now(), s.Cluster.TotalInstances(), s.Cluster.TotalQuota())
			}
		}
		var err error
		sup, err = s.StartGRAFSupervised(tr, ccfg, graf.SupervisorOptions{
			Dir:             *ckptDir,
			CheckpointEvery: time.Duration(*ckptEveryS * float64(time.Second)),
			Cold:            *cold,
			PriorAudit:      priorAudit,
			Tune:            tune,
			Lifecycle:       lc,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ctl = sup.Controller()
		fmt.Printf("supervised control plane up: restore=%s health=%s\n",
			sup.LastRestoreMode(), ctl.Health())
		if *assertRestore {
			if err := checkRestore(s, sup); err != nil {
				fmt.Fprintf(os.Stderr, "assert-restore: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("assert-restore OK: mode=warm health=%s totalQuota=%.0f mc\n",
				ctl.Health(), s.Cluster.TotalQuota())
		}
	} else {
		var err error
		ctl, err = s.StartGRAFWith(tr, ccfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tune(ctl)
		if lc != nil {
			lc.Attach(ctl)
			lc.Start()
		}
	}

	if *crashAt > 0 {
		// An abrupt controller death for the recovery smoke test: flush what
		// the OS would plausibly have persisted, append a torn half-record
		// (a crash mid-append), and exit without any graceful-shutdown path.
		s.Engine.At(*crashAt, func() {
			fmt.Printf("[%6.0fs] simulated crash: exiting abruptly\n", s.Engine.Now())
			if tel != nil {
				tel.Flight.Flush()
			}
			if audit != nil {
				fmt.Fprintf(audit, `{"type":"decision","at":%.3f,"kind":"solve","tot`, s.Engine.Now())
				audit.Sync()
			}
			os.Exit(42)
		})
	}

	var gen interface{ Start() }
	switch *shape {
	case "const":
		gen = s.OpenLoop(graf.ConstRate(*rate))
	case "surge":
		gen = s.OpenLoop(graf.StepRate(50, 300, 120*time.Second))
	case "azure":
		trace := azure.Generate(azure.DefaultTrace())
		gen = s.ClosedLoop(workload.TraceUsers(trace, 24))
	case "diurnal":
		gen = s.OpenLoop(graf.DiurnalRate(graf.DiurnalConfig{
			Seed: *seed, Seconds: *durS + 60, PeriodS: diurnalPeriodS,
			Base: 140, Amp: 100,
		}))
	default:
		fmt.Fprintf(os.Stderr, "unknown shape %q\n", *shape)
		os.Exit(2)
	}
	gen.Start()

	// Graceful shutdown: SIGINT/SIGTERM interrupts the chunked run loop
	// between 30-second chunks, then falls through to the same flush path a
	// natural end of run takes.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)

run:
	for t := 30; t <= *durS; t += 30 {
		select {
		case sig := <-sigC:
			fmt.Printf("\n%v: shutting down gracefully\n", sig)
			break run
		default:
		}
		s.RunFor(30 * time.Second)
		fmt.Printf("[%6.0fs] status: %3d instances, %6.0f mc, p99 %6.1f ms (SLO %d ms)\n",
			s.Engine.Now(), s.Cluster.TotalInstances(), s.Cluster.TotalRealizedQuota(),
			float64(s.P99(30*time.Second))/float64(time.Millisecond), *sloMS)
	}

	// Stop the loop and flush telemetry: final Stats summary on stdout, a
	// summary record closing the audit log, and a clean file sync.
	if sup != nil {
		// Restarts replace the controller instance; report the live one. A
		// final checkpoint preserves the end-of-run state for a successor.
		if live := sup.Controller(); live != nil {
			ctl = live
			if _, err := sup.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "final checkpoint: %v\n", err)
			}
		}
		sup.Stop()
	} else {
		ctl.Stop()
	}
	if lc != nil {
		lc.Stop()
		trips, promos, rolls, rejects, retrains, recovers := lc.Stats()
		fmt.Printf("lifecycle: phase=%s gen=%d trips=%d retrains=%d promotions=%d rollbacks=%d rejections=%d recoveries=%d\n",
			lc.Phase(), lc.Generation(), trips, retrains, promos, rolls, rejects, recovers)
	}
	st := ctl.Stats()
	fmt.Printf("final: health=%s solves=%d boosts=%d staleHolds=%d breakerTrips=%d fallbackSolves=%d rateLimited=%d transitions=%d\n",
		ctl.Health(), ctl.Solves(), st.Boosts, st.StaleHolds, st.BreakerTrips, st.FallbackSolves, st.RateLimited, st.Transitions)
	if fc := ctl.Forecaster(); fc != nil {
		fmt.Printf("forecast: model=%s forecastSolves=%d prewarms=%d degradedTicks=%d matured=%d mae=%.1f rps healthy=%v\n",
			fc.ModelName(), st.ForecastSolves, st.Prewarms, st.ForecastDegraded, fc.MaturedN, fc.MAE(), fc.Healthy())
	}
	if tel != nil {
		tel.Flight.Record(graf.AuditRecord{
			Type: "summary", At: s.Engine.Now(),
			Summary: map[string]float64{
				"solves":          float64(ctl.Solves()),
				"boosts":          float64(st.Boosts),
				"stale_holds":     float64(st.StaleHolds),
				"breaker_trips":   float64(st.BreakerTrips),
				"fallback_solves": float64(st.FallbackSolves),
				"rate_limited":    float64(st.RateLimited),
				"transitions":     float64(st.Transitions),
				"forecast_solves": float64(st.ForecastSolves),
				"prewarms":        float64(st.Prewarms),
			},
		})
		if err := tel.Flight.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "audit flush: %v\n", err)
		}
	}
	if audit != nil {
		if err := audit.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "audit close: %v\n", err)
		}
		fmt.Printf("audit log written to %s\n", *auditPath)
	}

	if srv != nil {
		if *smoke {
			if err := selfScrape(srv.Addr); err != nil {
				fmt.Fprintf(os.Stderr, "smoke scrape: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("smoke scrape: /metrics OK")
		}
		if *holdS > 0 {
			fmt.Printf("holding observability endpoints for %ds (ctrl-c to stop)\n", *holdS)
			select {
			case <-time.After(time.Duration(*holdS) * time.Second):
			case <-sigC:
			}
		}
		srv.Close()
	}
}

// checkRestore verifies a supervised boot actually resumed state: warm
// restore mode, and cluster quotas above the fresh-boot default (one CPU
// unit per service) — i.e. the scale the previous process had reached
// survived its death.
func checkRestore(s *graf.Simulation, sup *graf.Supervisor) error {
	if mode := sup.LastRestoreMode(); mode != "warm" {
		return fmt.Errorf("boot restore mode is %q, want \"warm\" (no valid snapshot?)", mode)
	}
	freshDefault := float64(len(s.Cluster.App.Services)) * 250
	if q := s.Cluster.TotalQuota(); q <= freshDefault {
		return fmt.Errorf("total quota %.0f mc is at or below the fresh-boot default %.0f mc: quotas did not survive", q, freshDefault)
	}
	ctl := sup.Controller()
	if ctl == nil {
		return fmt.Errorf("controller not running after supervised boot")
	}
	if ctl.Solves() == 0 && ctl.Health() == graf.Healthy {
		return fmt.Errorf("controller state is empty after warm restore (0 solves, default health)")
	}
	return nil
}

// replay verifies a recorded audit log against the model: every model-path
// decision must reproduce bit-identically. Returns a process exit code.
func replay(tr *graf.TrainedModel, path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		return 1
	}
	defer f.Close()
	log, err := graf.ReadAuditLog(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		return 1
	}
	rep := graf.ReplayAudit(tr, log)
	fmt.Println(rep)
	if !rep.OK() {
		for _, m := range rep.Mismatches {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		return 1
	}
	return 0
}

// selfScrape fetches /metrics from the daemon's own endpoint and verifies
// the families the controller must have produced are present and parseable.
func selfScrape(addr string) error {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE graf_decisions_total counter",
		"# TYPE graf_decision_stage_seconds histogram",
		"graf_decision_stage_seconds_bucket",
		`le="+Inf"`,
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("missing %q in /metrics output", want)
		}
	}
	return nil
}
