package main

import (
	"fmt"
	"os"
	"time"

	"graf"
)

// runFleet drives a multi-tenant fleet: -fleet N tenants running the same
// application and rate shape, sharded across the worker pool, all solving
// through one shared batched/cached inference service. Returns a process
// exit code: non-zero when any tenant had to be quarantined.
func runFleet(a *graf.App, tr *graf.TrainedModel, o options, seed int64) int {
	cfg := graf.FleetConfig{
		Shards:    o.shards,
		TickS:     5,
		Seed:      seed,
		WarmStart: true,
	}
	var rate func(float64) float64
	switch o.shape {
	case "surge":
		rate = graf.StepRate(50, 300, 120*time.Second)
	default:
		rate = graf.ConstRate(o.rate)
	}
	for i := 0; i < o.fleetN; i++ {
		cfg.Tenants = append(cfg.Tenants, graf.FleetTenant{
			ID:   fmt.Sprintf("tenant-%02d", i),
			Rate: rate,
		})
	}
	f, err := graf.NewFleet(a, tr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	nshards := 0
	for _, tn := range f.Tenants() {
		if tn.Shard >= nshards {
			nshards = tn.Shard + 1
		}
	}
	fmt.Printf("fleet: %d tenants, %d shards, shape=%s, %ds horizon\n",
		o.fleetN, nshards, o.shape, o.durS)
	start := time.Now()
	f.Run(float64(o.durS))
	wall := time.Since(start).Seconds()

	for _, tn := range f.Tenants() {
		status := "ok"
		if tn.Degraded() {
			status = fmt.Sprintf("DEGRADED (%v)", tn.PanicValue())
		}
		fmt.Printf("  %-12s shard %d  ticks %3d  p99 %6.1f ms  violation %5.1fs  %s\n",
			tn.ID, tn.Shard, tn.Ticks(), tn.LastP99()*1000, tn.ViolationSeconds(), status)
	}
	st := f.Stats()
	fmt.Printf("fleet done: %d rounds, %d ticks in %.1fs wall (%.1f ticks/s), %d contained panics\n",
		st.Rounds, st.Ticks, wall, float64(st.Ticks)/wall, st.Panics)
	if st.BatchedReqs > 0 {
		total := st.CacheHits + st.CacheMisses
		hitPct := 0.0
		if total > 0 {
			hitPct = 100 * float64(st.CacheHits) / float64(total)
		}
		fmt.Printf("inference: %d requests in %d batches, cache hit rate %.1f%% (%d/%d)\n",
			st.BatchedReqs, st.Batches, hitPct, st.CacheHits, total)
	}
	if st.Degraded > 0 {
		return 1
	}
	return 0
}
