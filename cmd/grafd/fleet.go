package main

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graf"
	"graf/internal/fleet"
	"graf/internal/obs"
	"graf/internal/rpc"
)

// fleetSpec is the portable fleet description this grafd run realizes. The
// same spec drives both the in-process fleet below and the multi-process
// control plane (grafrouter + grafd -shard); routing every mode through one
// spec is what makes a single-process run the byte-exact reference for a
// distributed one.
func fleetSpec(o options, seed int64) rpc.Spec {
	s := rpc.Spec{
		App:       o.appName,
		Shape:     o.shape,
		Rate:      o.rate,
		Seed:      seed,
		TickS:     5,
		WarmStart: true,
	}
	if o.sloBudget > 0 {
		s.SLOBudget = &obs.SLOConfig{Budget: o.sloBudget}
	}
	s.Brownout, _ = rpc.ParseBrownout(o.brownout) // validated with the flags
	return s
}

// fleetBundle adapts the loaded model artifact to the control plane's
// shard-local bundle.
func fleetBundle(tr *graf.TrainedModel) rpc.ModelBundle {
	return rpc.ModelBundle{
		Model:   tr.Model,
		Bounds:  tr.Bounds,
		SLO:     tr.SLO.Seconds(),
		MinRate: tr.MinRate, MaxRate: tr.MaxRate,
	}
}

// runFleet drives a multi-tenant fleet in one process: -fleet N tenants
// running the same application and rate shape, sharded across the worker
// pool, all solving through one shared batched/cached inference service.
// SIGINT/SIGTERM between rounds drains the fleet: every tenant's audit log
// is flushed and (with -ckpt) every tenant namespace is checkpointed before
// exit, so a successor process can verify it lost nothing. Returns a process
// exit code: non-zero when any tenant had to be quarantined.
func runFleet(tr *graf.TrainedModel, o options, seed int64) int {
	spec := fleetSpec(o, seed)
	cfg, err := spec.FleetConfig(fleetBundle(tr), o.auditDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// Static mode: the tenant population is fixed for the whole run, so the
	// startup pass may repair every torn audit tail in -audit-dir (exclusive
	// ownership of the whole directory is guaranteed).
	cfg.Dynamic = false
	cfg.Shards = o.shards
	if cfg.Shards == 0 && o.fleetN < 8 {
		// The default shard count tracks the worker pool; small fleets must
		// not fail the shards≤tenants invariant.
		cfg.Shards = o.fleetN
	}
	for i := 0; i < o.fleetN; i++ {
		cfg.Tenants = append(cfg.Tenants, spec.TenantConfig(fmt.Sprintf("tenant-%02d", i)))
	}
	f, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if n := f.RepairedLogs(); n > 0 {
		fmt.Printf("fleet: repaired %d torn audit tail(s) in %s\n", n, o.auditDir)
	}

	nshards := 0
	for _, tn := range f.Tenants() {
		if tn.Shard >= nshards {
			nshards = tn.Shard + 1
		}
	}
	rounds := int(float64(o.durS) / cfg.TickS)
	fmt.Printf("fleet: %d tenants, %d shards, shape=%s, %ds horizon (%d rounds)\n",
		o.fleetN, nshards, o.shape, o.durS, rounds)

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)

	ckptEveryRounds := 0
	if o.ckpt != "" {
		ckptEveryRounds = int(o.ckptEvery / cfg.TickS)
		if ckptEveryRounds < 1 {
			ckptEveryRounds = 1
		}
	}

	f.Start()
	start := time.Now()
	drained := false
run:
	for r := 1; r <= rounds; r++ {
		select {
		case sig := <-sigC:
			fmt.Printf("\n%v: draining fleet\n", sig)
			drained = true
			break run
		default:
		}
		f.RoundTo(r)
		if ckptEveryRounds > 0 && r%ckptEveryRounds == 0 && r < rounds {
			if _, err := f.Checkpoint(o.ckpt); err != nil {
				fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
			}
		}
	}
	wall := time.Since(start).Seconds()

	// Drain: flush every audit mirror, checkpoint every tenant namespace,
	// then stop the inference service — the same sequence a shard process
	// runs on shutdown, so restarts and migrations see identical artifacts.
	f.FlushAudit()
	if o.ckpt != "" {
		if n, err := f.Checkpoint(o.ckpt); err != nil {
			fmt.Fprintf(os.Stderr, "final checkpoint: %v\n", err)
		} else {
			fmt.Printf("fleet: checkpointed %d tenant namespace(s) into %s\n", n, o.ckpt)
		}
	}
	f.Stop()
	if drained {
		fmt.Printf("fleet: drained at round %d with every audit log flushed\n", f.Stats().Rounds)
	}

	for _, tn := range f.Tenants() {
		status := "ok"
		if tn.Degraded() {
			status = fmt.Sprintf("DEGRADED (%v)", tn.PanicValue())
		}
		fmt.Printf("  %-12s shard %d  ticks %3d  p99 %6.1f ms  violation %5.1fs  %s\n",
			tn.ID, tn.Shard, tn.Ticks(), tn.LastP99()*1000, tn.ViolationSeconds(), status)
	}
	st := f.Stats()
	fmt.Printf("fleet done: %d rounds, %d ticks in %.1fs wall (%.1f ticks/s), %d contained panics, %d brownout transitions\n",
		st.Rounds, st.Ticks, wall, float64(st.Ticks)/wall, st.Panics, st.BrownoutTransitions)
	if st.BatchedReqs > 0 {
		total := st.CacheHits + st.CacheMisses
		hitPct := 0.0
		if total > 0 {
			hitPct = 100 * float64(st.CacheHits) / float64(total)
		}
		fmt.Printf("inference: %d requests in %d batches, cache hit rate %.1f%% (%d/%d)\n",
			st.BatchedReqs, st.Batches, hitPct, st.CacheHits, total)
	}
	if o.auditDir != "" {
		fmt.Printf("audit logs written to %s\n", o.auditDir)
	}
	if st.Degraded > 0 {
		return 1
	}
	return 0
}
