package main

import (
	"strings"
	"testing"
)

// base returns a valid live-run flag set; tests mutate one aspect each.
func base() options {
	return options{model: "m.graf", shape: "const", rate: 150, sloMS: 250, durS: 600, ckptEvery: 20}
}

func TestValidateAcceptsCommonInvocations(t *testing.T) {
	cases := map[string]options{
		"plain model run": base(),
		"train run": func() options {
			o := base()
			o.model, o.train = "", true
			return o
		}(),
		"replay only": func() options {
			o := base()
			o.replay = "run.jsonl"
			return o
		}(),
		"supervised crash rehearsal": func() options {
			o := base()
			o.ckpt, o.crashAt, o.audit = "state", 100, "run.jsonl"
			return o
		}(),
		"warm-restart assertion": func() options {
			o := base()
			o.ckpt, o.assertRestore, o.audit = "state", true, "run.jsonl"
			return o
		}(),
		"lifecycle with archive": func() options {
			o := base()
			o.lifecycle, o.modelArchive = true, "models"
			return o
		}(),
		"lifecycle under supervisor": func() options {
			o := base()
			o.lifecycle, o.ckpt = true, "state"
			return o
		}(),
		"obs smoke": func() options {
			o := base()
			o.obs, o.smoke, o.hold = "127.0.0.1:0", true, 5
			return o
		}(),
		"fleet run": func() options {
			o := base()
			o.fleetN = 8
			return o
		}(),
		"fleet with pinned shards": func() options {
			o := base()
			o.fleetN, o.shards = 8, 4
			return o
		}(),
		"fleet surge": func() options {
			o := base()
			o.fleetN, o.shape = 4, "surge"
			return o
		}(),
		"fleet with checkpoints and audit dir": func() options {
			o := base()
			o.fleetN, o.ckpt, o.auditDir = 4, "state", "audit"
			return o
		}(),
		"shard member": func() options {
			o := base()
			o.shardAddr, o.ckpt, o.auditDir = "127.0.0.1:0", "state", "audit"
			return o
		}(),
		"shard with overload protection": func() options {
			o := base()
			o.shardAddr, o.maxInflight, o.governorBudgetMS = "127.0.0.1:0", 16, 500
			return o
		}(),
		"fleet with scripted brownout": func() options {
			o := base()
			o.fleetN, o.brownout = 4, "12-24:heuristic,30:warm"
			return o
		}(),
		"forecasted diurnal run": func() options {
			o := base()
			o.forecast, o.shape = "hw", "diurnal"
			return o
		}(),
		"forecast with explicit horizon and quantile": func() options {
			o := base()
			o.forecast, o.horizonTicks, o.fcQuantile = "ar", 4, 0.9
			return o
		}(),
		"forecast under supervisor": func() options {
			o := base()
			o.forecast, o.ckpt, o.audit = "hw", "state", "run.jsonl"
			return o
		}(),
	}
	for name, o := range cases {
		if err := o.validate(); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
}

func TestValidateRejectsContradictions(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string // substring of the error
	}{
		{"no model source", func(o *options) { o.model = "" }, "-model"},
		{"train and model", func(o *options) { o.train = true }, "mutually exclusive"},
		{"bad shape", func(o *options) { o.shape = "sawtooth" }, "shape"},
		{"negative rate", func(o *options) { o.rate = -1 }, "-rate"},
		{"zero slo", func(o *options) { o.sloMS = 0 }, "-slo"},
		{"zero duration", func(o *options) { o.durS = 0 }, "-dur"},
		{"crash-at without ckpt", func(o *options) { o.crashAt = 100 }, "-crash-at requires -ckpt"},
		{"assert-restore without ckpt", func(o *options) { o.assertRestore = true }, "-assert-restore requires -ckpt"},
		{"cold without ckpt", func(o *options) { o.cold = true }, "-cold requires -ckpt"},
		{"non-positive cadence", func(o *options) { o.ckpt, o.ckptEvery = "state", 0 }, "-ckpt-every"},
		{"crash after the run ends", func(o *options) { o.ckpt, o.crashAt = "state", 600 }, "-crash-at"},
		{"replay with ckpt", func(o *options) { o.replay, o.ckpt = "run.jsonl", "state" }, "-ckpt has no effect"},
		{"replay with crash-at", func(o *options) { o.replay, o.ckpt, o.crashAt = "run.jsonl", "state", 10 }, "-ckpt has no effect"},
		{"replay with audit", func(o *options) { o.replay, o.audit = "run.jsonl", "out.jsonl" }, "-audit has no effect"},
		{"replay with obs", func(o *options) { o.replay, o.obs = "run.jsonl", "127.0.0.1:0" }, "-obs has no effect"},
		{"replay with lifecycle", func(o *options) { o.replay, o.lifecycle = "run.jsonl", true }, "-lifecycle has no effect"},
		{"smoke without obs", func(o *options) { o.smoke = true }, "-smoke"},
		{"hold without obs", func(o *options) { o.hold = 30 }, "-hold"},
		{"archive without lifecycle", func(o *options) { o.modelArchive = "models" }, "-model-archive"},
		{"negative fleet", func(o *options) { o.fleetN = -1 }, "-fleet"},
		{"fleet with replay", func(o *options) { o.fleetN, o.replay = 4, "run.jsonl" }, "pick one"},
		{"more shards than tenants", func(o *options) { o.fleetN, o.shards = 4, 8 }, "-shards 8 exceeds"},
		{"shards without fleet", func(o *options) { o.shards = 4 }, "needs -fleet"},
		{"fleet with azure shape", func(o *options) { o.fleetN, o.shape = 4, "azure" }, "single-tenant shape"},
		{"fleet with lifecycle", func(o *options) { o.fleetN, o.lifecycle = 4, true }, "-lifecycle"},
		{"fleet with audit", func(o *options) { o.fleetN, o.audit = 4, "run.jsonl" }, "-audit"},
		{"fleet with obs", func(o *options) { o.fleetN, o.obs = 4, "127.0.0.1:0" }, "-obs"},
		{"fleet with crash-at", func(o *options) { o.fleetN, o.ckpt, o.crashAt = 4, "state", 10 }, "not available with -fleet"},
		{"shard with fleet", func(o *options) { o.shardAddr, o.fleetN = "127.0.0.1:0", 4 }, "pick one"},
		{"shard with train", func(o *options) { o.shardAddr, o.train, o.model = "127.0.0.1:0", true, "" }, "-train"},
		{"shard with shards", func(o *options) { o.shardAddr, o.shards = "127.0.0.1:0", 2 }, "-shards"},
		{"shard with replay", func(o *options) { o.shardAddr, o.replay = "127.0.0.1:0", "run.jsonl" }, "-replay"},
		{"shard with lifecycle", func(o *options) { o.shardAddr, o.lifecycle = "127.0.0.1:0", true }, "-lifecycle"},
		{"shard with obs", func(o *options) { o.shardAddr, o.obs = "127.0.0.1:0", "127.0.0.1:0" }, "-obs"},
		{"audit-dir without fleet or shard", func(o *options) { o.auditDir = "audit" }, "-audit-dir"},
		{"brownout without fleet", func(o *options) { o.brownout = "12:heuristic" }, "-brownout"},
		{"brownout on shard", func(o *options) { o.shardAddr, o.brownout = "127.0.0.1:0", "12:heuristic" }, "-brownout"},
		{"brownout bad step", func(o *options) { o.fleetN, o.brownout = 4, "12:turbo" }, "ladder step"},
		{"brownout bad range", func(o *options) { o.fleetN, o.brownout = 4, "24-12:heuristic" }, "above FROM"},
		{"max-inflight without shard", func(o *options) { o.maxInflight = 16 }, "-max-inflight"},
		{"negative max-inflight", func(o *options) { o.shardAddr, o.maxInflight = "127.0.0.1:0", -1 }, "-max-inflight"},
		{"governor budget without shard", func(o *options) { o.governorBudgetMS = 500 }, "-governor-budget-ms"},
		{"unknown forecast model", func(o *options) { o.forecast = "lstm" }, "-forecast model"},
		{"forecast with replay", func(o *options) { o.forecast, o.replay = "hw", "run.jsonl" }, "-forecast configures a live controller"},
		{"forecast with fleet", func(o *options) { o.forecast, o.fleetN = "hw", 4 }, "not available with -fleet"},
		{"forecast on shard", func(o *options) { o.forecast, o.shardAddr = "hw", "127.0.0.1:0" }, "fleet spec from the router"},
		{"negative horizon", func(o *options) { o.forecast, o.horizonTicks = "hw", -1 }, "-horizon-ticks"},
		{"horizon without forecast", func(o *options) { o.horizonTicks = 3 }, "needs -forecast"},
		{"quantile without forecast", func(o *options) { o.fcQuantile = 0.95 }, "needs -forecast"},
		{"quantile at one", func(o *options) { o.forecast, o.fcQuantile = "hw", 1 }, "(0,1)"},
		{"quantile above one", func(o *options) { o.forecast, o.fcQuantile = "hw", 1.5 }, "(0,1)"},
		{"fleet with diurnal shape", func(o *options) { o.fleetN, o.shape = 4, "diurnal" }, "single-tenant shape"},
	}
	for _, c := range cases {
		o := base()
		c.mut(&o)
		err := o.validate()
		if err == nil {
			t.Errorf("%s: accepted, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
